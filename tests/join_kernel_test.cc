// Differential tests for the columnar join kernels and the fused
// realization-join operator: the flat-hash-table HashJoin must agree with the
// nested-loop oracle row for row, with the preserved multimap reference
// implementation as a bag, and the fused JoinRealizations / flat
// DedupKeepTightest must be byte-identical to the unfused compositions they
// replaced — including end-to-end MineWindow output on a synthetic domain.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/miner.h"
#include "core/realization_join.h"
#include "relational/join_hash_table.h"
#include "relational/morsel.h"
#include "relational/ops.h"
#include "relational/reference_join.h"
#include "relational/table.h"
#include "synth/synthesizer.h"

namespace wiclean {
namespace {

namespace rel = ::wiclean::relational;

// Mixed-type table: two int64 columns, one string column, one more int64 —
// each cell null with probability null_pct/100.
rel::Table RandomMixedTable(Rng* rng, size_t rows, int64_t domain,
                            uint64_t null_pct) {
  rel::Schema schema;
  schema.AddField(rel::Field{"a", rel::DataType::kInt64});
  schema.AddField(rel::Field{"b", rel::DataType::kInt64});
  schema.AddField(rel::Field{"s", rel::DataType::kString});
  schema.AddField(rel::Field{"c", rel::DataType::kInt64});
  rel::Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<rel::Value> row;
    for (size_t c = 0; c < 4; ++c) {
      if (rng->NextBelow(100) < null_pct) {
        row.push_back(rel::Value::Null());
      } else if (c == 2) {
        row.push_back(rel::Value::String(
            "s" + std::to_string(rng->NextBelow(domain))));
      } else {
        row.push_back(rel::Value::Int64(
            static_cast<int64_t>(rng->NextBelow(domain))));
      }
    }
    t.AppendRow(row);
  }
  return t;
}

// Row renderings in table order (exact, order-sensitive comparison).
std::vector<std::string> RowList(const rel::Table& t) {
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (const rel::Value& v : t.RowValues(r)) key += v.ToString() + "|";
    rows.push_back(std::move(key));
  }
  return rows;
}

std::vector<std::string> SortedRowList(const rel::Table& t) {
  std::vector<std::string> rows = RowList(t);
  std::sort(rows.begin(), rows.end());
  return rows;
}

// The join specs exercised against every random table pair: int64 and string
// equality keys, inequalities, wildcards, and the null-tolerant mode.
std::vector<rel::JoinSpec> SpecZoo() {
  std::vector<rel::JoinSpec> specs;
  rel::JoinSpec s;
  s.equal_cols = {{0, 0}};
  specs.push_back(s);
  s.equal_cols = {{0, 0}, {1, 1}};
  specs.push_back(s);
  s.equal_cols = {{2, 2}};  // string key
  specs.push_back(s);
  s.equal_cols = {{0, 0}, {2, 2}};  // mixed int64 + string key
  specs.push_back(s);
  s = rel::JoinSpec{};
  s.equal_cols = {{0, 0}};
  s.not_equal_cols = {{1, 1}, {3, 3}};
  specs.push_back(s);
  s.null_inequality_passes = true;
  specs.push_back(s);
  s = rel::JoinSpec{};
  s.equal_cols = {{0, 0}};
  s.wildcard_equal_cols = {{1, 1}, {2, 2}};
  specs.push_back(s);
  s.not_equal_cols = {{3, 3}};
  specs.push_back(s);
  return specs;
}

struct KernelCase {
  uint64_t seed;
  size_t left_rows;
  size_t right_rows;
  int64_t domain;
  uint64_t null_pct;
};

class JoinKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(JoinKernelTest, HashJoinMatchesNestedLoopExactly) {
  const KernelCase& c = GetParam();
  Rng rng(c.seed);
  rel::Table left = RandomMixedTable(&rng, c.left_rows, c.domain, c.null_pct);
  rel::Table right =
      RandomMixedTable(&rng, c.right_rows, c.domain, c.null_pct);
  for (const rel::JoinSpec& spec : SpecZoo()) {
    Result<rel::Table> h = rel::HashJoin(left, right, spec);
    Result<rel::Table> n = rel::NestedLoopJoin(left, right, spec);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(n.ok());
    // The columnar hash join emits matches per left row in ascending right
    // row order, so it must reproduce nested-loop output *positionally*.
    EXPECT_EQ(RowList(*h), RowList(*n)) << "seed " << c.seed;
  }
}

TEST_P(JoinKernelTest, HashJoinMatchesMultimapReferenceAsBag) {
  const KernelCase& c = GetParam();
  Rng rng(c.seed ^ 0x1234abcd);
  rel::Table left = RandomMixedTable(&rng, c.left_rows, c.domain, c.null_pct);
  rel::Table right =
      RandomMixedTable(&rng, c.right_rows, c.domain, c.null_pct);
  for (const rel::JoinSpec& spec : SpecZoo()) {
    Result<rel::Table> h = rel::HashJoin(left, right, spec);
    Result<rel::Table> ref = rel::ReferenceHashJoin(left, right, spec);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(ref.ok());
    // The old multimap build side has unspecified order within one probe, so
    // compare as bags.
    EXPECT_EQ(SortedRowList(*h), SortedRowList(*ref)) << "seed " << c.seed;
  }
}

TEST_P(JoinKernelTest, FullOuterJoinMatchesExhaustivePath) {
  const KernelCase& c = GetParam();
  Rng rng(c.seed ^ 0x77);
  rel::Table left = RandomMixedTable(&rng, c.left_rows, c.domain, c.null_pct);
  rel::Table right =
      RandomMixedTable(&rng, c.right_rows, c.domain, c.null_pct);
  for (rel::JoinSpec spec : SpecZoo()) {
    spec.prefer_nested_loop = false;
    Result<rel::Table> fast = rel::FullOuterJoin(left, right, spec);
    spec.prefer_nested_loop = true;
    Result<rel::Table> slow = rel::FullOuterJoin(left, right, spec);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    // Both paths emit matches left-major with ascending right rows, then pad
    // unmatched rows in input order — exact positional agreement.
    EXPECT_EQ(RowList(*fast), RowList(*slow)) << "seed " << c.seed;
  }
}

TEST_P(JoinKernelTest, DistinctProjectKeepsFirstOccurrences) {
  const KernelCase& c = GetParam();
  Rng rng(c.seed ^ 0xbeef);
  rel::Table input = RandomMixedTable(&rng, c.left_rows, 3, c.null_pct);

  std::vector<size_t> cols = {0, 2};
  Result<rel::Table> fast = rel::DistinctProject(input, cols);
  ASSERT_TRUE(fast.ok());

  // Naive order-preserving reference: linear scan over kept rows with
  // null == null semantics.
  Result<rel::Table> projected = rel::Project(input, cols);
  ASSERT_TRUE(projected.ok());
  std::vector<std::string> keep;
  for (const std::string& row : RowList(*projected)) {
    if (std::find(keep.begin(), keep.end(), row) == keep.end()) {
      keep.push_back(row);
    }
  }
  EXPECT_EQ(RowList(*fast), keep) << "seed " << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, JoinKernelTest,
    ::testing::Values(KernelCase{1, 0, 0, 5, 0},     // empty inputs
                      KernelCase{2, 13, 0, 5, 10},   // empty build side
                      KernelCase{3, 0, 13, 5, 10},   // empty probe side
                      KernelCase{4, 40, 60, 7, 0},   // dense collisions
                      KernelCase{5, 60, 40, 7, 25},  // heavy nulls
                      KernelCase{6, 100, 100, 23, 10},
                      KernelCase{7, 200, 150, 500, 5},  // sparse matches
                      KernelCase{8, 77, 133, 3, 40}));

// ---------------------------------------------------------------------------
// Realization-table kernels.

rel::Schema VarSchema(size_t num_vars, const char* prefix) {
  rel::Schema schema;
  for (size_t i = 0; i < num_vars; ++i) {
    schema.AddField(rel::Field{prefix + std::to_string(i),
                               rel::DataType::kInt64});
  }
  schema.AddField(rel::Field{"tmin", rel::DataType::kInt64});
  schema.AddField(rel::Field{"tmax", rel::DataType::kInt64});
  return schema;
}

rel::Table RandomRealizationTable(Rng* rng, size_t rows, size_t num_vars,
                                  int64_t domain, int64_t horizon) {
  rel::Table t(VarSchema(num_vars, "v"));
  std::vector<int64_t> row(num_vars + 2);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_vars; ++c) {
      row[c] = static_cast<int64_t>(rng->NextBelow(domain));
    }
    int64_t t0 = static_cast<int64_t>(rng->NextBelow(horizon));
    int64_t t1 = t0 + static_cast<int64_t>(rng->NextBelow(horizon));
    row[num_vars] = t0;
    row[num_vars + 1] = t1;
    t.AppendInt64Row(row);
  }
  return t;
}

rel::Table RandomActionTable(Rng* rng, size_t rows, int64_t domain,
                             int64_t horizon) {
  rel::Schema schema;
  schema.AddField(rel::Field{"u", rel::DataType::kInt64});
  schema.AddField(rel::Field{"v", rel::DataType::kInt64});
  schema.AddField(rel::Field{"t", rel::DataType::kInt64});
  rel::Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    t.AppendInt64Row({static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(horizon))});
  }
  return t;
}

// The unfused pipeline the fused operator replaced: nested-loop join (same
// candidate order as the columnar hash join), row-at-a-time span recompute
// and prune, then the preserved reference dedup.
rel::Table OracleJoinRealizations(const rel::Table& left,
                                 const rel::Table& right,
                                 const RealizationJoinSpec& rspec) {
  const size_t n = rspec.num_left_vars;
  const bool fresh = rspec.glue_target_col < 0;
  rel::JoinSpec spec;
  spec.equal_cols.push_back({rspec.glue_source_col, 0});
  if (!fresh) {
    spec.equal_cols.push_back(
        {static_cast<size_t>(rspec.glue_target_col), 1});
  } else {
    for (size_t k : rspec.distinct_from_target) {
      spec.not_equal_cols.push_back({k, 1});
    }
  }
  Result<rel::Table> joined = rel::NestedLoopJoin(left, right, spec);
  EXPECT_TRUE(joined.ok());

  const size_t out_vars = n + (fresh ? 1 : 0);
  rel::Table realization(VarSchema(out_vars, "v"));
  std::vector<int64_t> row(out_vars + 2);
  for (size_t r = 0; r < joined->num_rows(); ++r) {
    int64_t t = joined->column(n + 4).Int64At(r);
    int64_t tmin = std::min(joined->column(n).Int64At(r), t);
    int64_t tmax = std::max(joined->column(n + 1).Int64At(r), t);
    if (tmax - tmin > rspec.max_span) continue;
    for (size_t c = 0; c < n; ++c) row[c] = joined->column(c).Int64At(r);
    if (fresh) row[n] = joined->column(n + 3).Int64At(r);
    row[out_vars] = tmin;
    row[out_vars + 1] = tmax;
    realization.AppendInt64Row(row);
  }
  if (rspec.dedup_keep_tightest) {
    realization = ReferenceDedupKeepTightest(realization, out_vars);
  }
  return realization;
}

struct RealizationCase {
  uint64_t seed;
  size_t left_rows;
  size_t right_rows;
  size_t num_vars;
  int64_t domain;
};

class RealizationJoinTest : public ::testing::TestWithParam<RealizationCase> {
};

TEST_P(RealizationJoinTest, FusedMatchesUnfusedPipelineExactly) {
  const RealizationCase& c = GetParam();
  constexpr int64_t kHorizon = 1000;
  Rng rng(c.seed);
  rel::Table left =
      RandomRealizationTable(&rng, c.left_rows, c.num_vars, c.domain,
                             kHorizon);
  rel::Table right =
      RandomActionTable(&rng, c.right_rows, c.domain, kHorizon);

  std::vector<RealizationJoinSpec> rspecs;
  RealizationJoinSpec rspec;
  rspec.num_left_vars = c.num_vars;
  rspec.glue_source_col = 0;
  // Fresh target with a distinctness constraint on every variable.
  rspec.glue_target_col = -1;
  for (size_t k = 0; k < c.num_vars; ++k) {
    rspec.distinct_from_target.push_back(k);
  }
  rspecs.push_back(rspec);
  // Fresh target, unconstrained.
  rspec.distinct_from_target.clear();
  rspecs.push_back(rspec);
  // Glued target.
  rspec.glue_target_col = static_cast<int>(c.num_vars - 1);
  rspecs.push_back(rspec);

  for (RealizationJoinSpec rs : rspecs) {
    for (int64_t max_span :
         {std::numeric_limits<int64_t>::max(), int64_t{800}, int64_t{50}}) {
      for (bool dedup : {false, true}) {
        rs.max_span = max_span;
        rs.dedup_keep_tightest = dedup;
        const size_t out_vars =
            c.num_vars + (rs.glue_target_col < 0 ? 1 : 0);
        Result<rel::Table> fused =
            JoinRealizations(left, right, VarSchema(out_vars, "v"), rs);
        ASSERT_TRUE(fused.ok());
        rel::Table oracle = OracleJoinRealizations(left, right, rs);
        EXPECT_EQ(RowList(*fused), RowList(oracle))
            << "seed " << c.seed << " max_span " << max_span << " dedup "
            << dedup << " glue_target " << rs.glue_target_col;
      }
    }
  }
}

TEST_P(RealizationJoinTest, FlatDedupMatchesReferenceExactly) {
  const RealizationCase& c = GetParam();
  Rng rng(c.seed ^ 0xdead);
  // Small domain forces many duplicate variable assignments.
  rel::Table input =
      RandomRealizationTable(&rng, c.left_rows * 4, c.num_vars, c.domain,
                             200);
  rel::Table fast = DedupKeepTightest(input, c.num_vars);
  rel::Table ref = ReferenceDedupKeepTightest(input, c.num_vars);
  EXPECT_EQ(RowList(fast), RowList(ref)) << "seed " << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, RealizationJoinTest,
    ::testing::Values(RealizationCase{11, 0, 0, 2, 5},
                      RealizationCase{12, 30, 0, 2, 4},
                      RealizationCase{13, 0, 30, 3, 4},
                      RealizationCase{14, 50, 80, 2, 4},
                      RealizationCase{15, 120, 90, 3, 6},
                      RealizationCase{16, 200, 200, 4, 8},
                      RealizationCase{17, 150, 150, 2, 3}));

// ---------------------------------------------------------------------------
// Vectorized probing and morsel-parallel execution. ProbeBatch must be
// pointwise Probe for any batch, and every kernel run under an explicit
// MorselPolicy must be byte-identical to its serial default at every thread
// count × morsel size × batch width — the determinism contract the parallel
// miner builds on.

TEST(ProbeBatchTest, MatchesScalarProbePointwise) {
  Rng rng(4242);
  for (size_t build_rows : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                            size_t{777}}) {
    // A small hash domain forces shared chains and long linear-probe runs —
    // the cases where a two-pass batched walk could diverge from Probe.
    std::vector<uint64_t> hashes(build_rows);
    std::vector<uint8_t> valid(build_rows);
    for (size_t r = 0; r < build_rows; ++r) {
      hashes[r] = rel::MixInt64(static_cast<int64_t>(rng.NextBelow(97)));
      valid[r] = rng.NextBelow(100) < 85 ? 1 : 0;
    }
    rel::JoinHashTable ht;
    ht.Build(hashes.data(), valid.data(), build_rows);

    for (size_t n = 1; n <= rel::kProbeBatchWidth; ++n) {
      for (int rep = 0; rep < 32; ++rep) {
        uint64_t batch[rel::kProbeBatchWidth];
        uint32_t out[rel::kProbeBatchWidth];
        for (size_t i = 0; i < n; ++i) {
          // Mix present hashes (including ones built from invalid rows, which
          // must still resolve exactly like Probe) with absent ones.
          batch[i] = build_rows > 0 && rng.NextBelow(2) == 0
                         ? hashes[rng.NextBelow(build_rows)]
                         : rel::MixInt64(static_cast<int64_t>(
                               1000 + rng.NextBelow(1000)));
        }
        ht.ProbeBatch(batch, n, out);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(out[i], ht.Probe(batch[i]))
              << "build_rows " << build_rows << " n " << n << " i " << i;
        }
      }
    }
  }
}

TEST_P(JoinKernelTest, MorselPolicyJoinIsByteIdenticalToDefault) {
  const KernelCase& c = GetParam();
  Rng rng(c.seed ^ 0x5151);
  rel::Table left = RandomMixedTable(&rng, c.left_rows, c.domain, c.null_pct);
  rel::Table right =
      RandomMixedTable(&rng, c.right_rows, c.domain, c.null_pct);

  std::vector<std::vector<std::string>> expected;
  for (const rel::JoinSpec& spec : SpecZoo()) {
    Result<rel::Table> serial = rel::HashJoin(left, right, spec);
    ASSERT_TRUE(serial.ok());
    expected.push_back(RowList(*serial));
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    // morsel_rows 7 splits even the small tables into many odd-sized morsels;
    // probe_batch 1 exercises the scalar lane under the morsel scheduler.
    for (size_t morsel_rows : {size_t{7}, size_t{64}}) {
      for (size_t batch : {size_t{1}, size_t{8}}) {
        rel::MorselPolicy policy;
        policy.pool = &pool;
        policy.morsel_rows = morsel_rows;
        policy.probe_batch = batch;
        size_t si = 0;
        for (const rel::JoinSpec& spec : SpecZoo()) {
          Result<rel::Table> m = rel::HashJoin(left, right, spec, policy);
          ASSERT_TRUE(m.ok());
          EXPECT_EQ(RowList(*m), expected[si])
              << "seed " << c.seed << " threads " << threads << " morsel "
              << morsel_rows << " batch " << batch << " spec " << si;
          ++si;
        }
      }
    }
  }
}

TEST_P(RealizationJoinTest, MorselPolicyFusedJoinMatchesDefault) {
  const RealizationCase& c = GetParam();
  constexpr int64_t kHorizon = 1000;
  Rng rng(c.seed ^ 0x2727);
  rel::Table left =
      RandomRealizationTable(&rng, c.left_rows, c.num_vars, c.domain,
                             kHorizon);
  rel::Table right =
      RandomActionTable(&rng, c.right_rows, c.domain, kHorizon);

  RealizationJoinSpec rs;
  rs.num_left_vars = c.num_vars;
  rs.glue_source_col = 0;
  rs.glue_target_col = -1;
  for (size_t k = 0; k < c.num_vars; ++k) rs.distinct_from_target.push_back(k);
  rs.max_span = 800;

  for (bool dedup : {false, true}) {
    rs.dedup_keep_tightest = dedup;
    const size_t out_vars = c.num_vars + 1;
    Result<rel::Table> serial =
        JoinRealizations(left, right, VarSchema(out_vars, "v"), rs);
    ASSERT_TRUE(serial.ok());
    const std::vector<std::string> expect = RowList(*serial);

    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ThreadPool pool(threads);
      for (size_t morsel_rows : {size_t{16}, size_t{64}}) {
        for (size_t batch : {size_t{1}, size_t{8}}) {
          rel::MorselPolicy policy;
          policy.pool = &pool;
          policy.morsel_rows = morsel_rows;
          policy.probe_batch = batch;
          Result<rel::Table> m = JoinRealizations(
              left, right, VarSchema(out_vars, "v"), rs, policy);
          ASSERT_TRUE(m.ok());
          EXPECT_EQ(RowList(*m), expect)
              << "seed " << c.seed << " dedup " << dedup << " threads "
              << threads << " morsel " << morsel_rows << " batch " << batch;
        }
      }
    }
  }
}

TEST_P(RealizationJoinTest, MorselPolicyDedupMatchesDefault) {
  const RealizationCase& c = GetParam();
  Rng rng(c.seed ^ 0x9b9b);
  // Small domain forces duplicate assignments split across morsel boundaries,
  // so the merge must reconcile representatives found in different morsels.
  rel::Table input =
      RandomRealizationTable(&rng, c.left_rows * 4, c.num_vars, c.domain,
                             200);
  rel::Table serial = DedupKeepTightest(input, c.num_vars);
  const std::vector<std::string> expect = RowList(serial);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    for (size_t morsel_rows : {size_t{16}, size_t{64}}) {
      rel::MorselPolicy policy;
      policy.pool = &pool;
      policy.morsel_rows = morsel_rows;
      rel::Table m = DedupKeepTightest(input, c.num_vars, policy);
      EXPECT_EQ(RowList(m), expect)
          << "seed " << c.seed << " threads " << threads << " morsel "
          << morsel_rows;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the fused PM path must reproduce the PM−join ablation's mining
// output exactly (patterns, frequencies, supports, in order) on a synthetic
// soccer world — the "no silent behavior change" guarantee for the rewrite.

std::vector<std::tuple<std::string, double, size_t>> Signature(
    const std::vector<MinedPattern>& ps) {
  std::vector<std::tuple<std::string, double, size_t>> out;
  out.reserve(ps.size());
  for (const MinedPattern& mp : ps) {
    out.emplace_back(mp.pattern.CanonicalKey(), mp.frequency, mp.support);
  }
  return out;
}

TEST(MineWindowIdentityTest, FusedHashPathMatchesNestedLoopPath) {
  SynthOptions o;
  o.seed_entities = 30;
  o.years = 1;
  o.rng_seed = 21;
  o.soccer = true;
  o.background_entities = 60;
  o.background_edit_rate = 2.0;
  Result<SynthWorld> world = Synthesize(o);
  ASSERT_TRUE(world.ok());

  MinerOptions base;
  base.frequency_threshold = 0.3;
  base.max_pattern_actions = 4;

  for (int week : {10, 16, 20}) {
    TimeWindow window = world->WindowOf(week);
    MinerOptions hash_opts = base;
    hash_opts.join_engine = JoinEngineKind::kHashJoin;
    MinerOptions loop_opts = base;
    loop_opts.join_engine = JoinEngineKind::kNestedLoop;

    PatternMiner hash_miner(world->registry.get(), &world->store, hash_opts);
    PatternMiner loop_miner(world->registry.get(), &world->store, loop_opts);
    Result<MineWindowResult> h =
        hash_miner.MineWindow(world->types.soccer_player, window);
    Result<MineWindowResult> n =
        loop_miner.MineWindow(world->types.soccer_player, window);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(n.ok());

    EXPECT_EQ(Signature(h->all_frequent), Signature(n->all_frequent))
        << "week " << week;
    EXPECT_EQ(Signature(h->most_specific), Signature(n->most_specific))
        << "week " << week;
    EXPECT_EQ(h->stats.candidates_considered, n->stats.candidates_considered)
        << "week " << week;
  }
}

// Whole-mine output must be invariant under the miner's thread count: the
// generational candidate evaluation commits results in enumeration order, so
// patterns, frequencies, supports, and the candidate counter all match the
// serial run digest-for-digest.
TEST(MineWindowIdentityTest, OutputInvariantUnderMineThreadCount) {
  SynthOptions o;
  o.seed_entities = 30;
  o.years = 1;
  o.rng_seed = 21;
  o.soccer = true;
  o.background_entities = 60;
  o.background_edit_rate = 2.0;
  Result<SynthWorld> world = Synthesize(o);
  ASSERT_TRUE(world.ok());

  MinerOptions base;
  base.frequency_threshold = 0.3;
  base.max_pattern_actions = 4;

  for (int week : {10, 16}) {
    TimeWindow window = world->WindowOf(week);
    MinerOptions serial_opts = base;
    serial_opts.num_threads = 1;
    PatternMiner serial_miner(world->registry.get(), &world->store,
                              serial_opts);
    Result<MineWindowResult> s =
        serial_miner.MineWindow(world->types.soccer_player, window);
    ASSERT_TRUE(s.ok());

    for (size_t threads : {size_t{2}, size_t{4}}) {
      MinerOptions opts = base;
      opts.num_threads = threads;
      PatternMiner miner(world->registry.get(), &world->store, opts);
      Result<MineWindowResult> r =
          miner.MineWindow(world->types.soccer_player, window);
      ASSERT_TRUE(r.ok());

      EXPECT_EQ(Signature(r->all_frequent), Signature(s->all_frequent))
          << "week " << week << " threads " << threads;
      EXPECT_EQ(Signature(r->most_specific), Signature(s->most_specific))
          << "week " << week << " threads " << threads;
      EXPECT_EQ(r->stats.candidates_considered,
                s->stats.candidates_considered)
          << "week " << week << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Regression test for the MineFrequent timer accounting bug: the mine timer
// used to be restarted *before* the ingest phase and read again after the
// loop, so every loop ingest was double-counted as mining time and the two
// counters could sum past the wall clock. Post-fix they are disjoint
// sub-intervals of the measured wall time, so this bound can never flake.

TEST(MinerTimerTest, IngestAndMineSecondsAreDisjoint) {
  // Multiple domains force loop-phase type ingestion (clubs, films,
  // parties... pulled in after the first expansion round), which is exactly
  // the interval the old code counted twice.
  SynthOptions o;
  o.seed_entities = 400;
  o.years = 1;
  o.rng_seed = 33;
  o.soccer = true;
  o.cinema = true;
  o.politics = true;
  Result<SynthWorld> world = Synthesize(o);
  ASSERT_TRUE(world.ok());

  MinerOptions opts;
  opts.frequency_threshold = 0.3;
  opts.max_pattern_actions = 4;
  PatternMiner miner(world->registry.get(), &world->store, opts);

  TimeWindow window = world->WindowOf(16);
  Timer wall;
  Result<MineWindowResult> r =
      miner.MineWindow(world->types.soccer_player, window);
  double wall_seconds = wall.ElapsedSeconds();
  ASSERT_TRUE(r.ok());

  EXPECT_GT(r->stats.ingest_seconds, 0.0);
  EXPECT_GT(r->stats.mine_seconds, 0.0);
  // Each phase timer covers a distinct slice of the wall interval; their sum
  // can only fall below it (bookkeeping outside both phases is untimed).
  EXPECT_LE(r->stats.ingest_seconds + r->stats.mine_seconds,
            wall_seconds + 1e-6);
}

}  // namespace
}  // namespace wiclean
