#include <gtest/gtest.h>

#include "core/pattern.h"
#include "synth/catalog.h"

namespace wiclean {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<CatalogTaxonomy> catalog = BuildCatalogTaxonomy();
    ASSERT_TRUE(catalog.ok());
    taxonomy_ = std::move(catalog->taxonomy);
    types_ = catalog->types;
  }

  /// {op (source_type#0, relation, target_type#1)}, source #0.
  Pattern Singleton(TypeId source_type, const std::string& relation,
                    TypeId target_type, EditOp op = EditOp::kAdd) {
    Pattern p;
    int s = p.AddVar(source_type);
    int t = p.AddVar(target_type);
    EXPECT_TRUE(p.AddAction(op, s, relation, t).ok());
    EXPECT_TRUE(p.SetSourceVar(s).ok());
    return p;
  }

  /// The transfer pattern: +cc(new), -cc(old), +squad, -squad.
  Pattern Transfer(TypeId player, TypeId club) {
    Pattern p;
    int pl = p.AddVar(player);
    int c1 = p.AddVar(club);
    int c2 = p.AddVar(club);
    EXPECT_TRUE(p.AddAction(EditOp::kAdd, pl, "current_club", c1).ok());
    EXPECT_TRUE(p.AddAction(EditOp::kRemove, pl, "current_club", c2).ok());
    EXPECT_TRUE(p.AddAction(EditOp::kAdd, c1, "squad", pl).ok());
    EXPECT_TRUE(p.AddAction(EditOp::kRemove, c2, "squad", pl).ok());
    EXPECT_TRUE(p.SetSourceVar(pl).ok());
    return p;
  }

  std::unique_ptr<TypeTaxonomy> taxonomy_;
  TypeCatalog types_;
};

TEST_F(PatternTest, BuildValidation) {
  Pattern p;
  int v = p.AddVar(types_.soccer_player);
  EXPECT_FALSE(p.AddAction(EditOp::kAdd, v, "r", 5).ok());  // unknown var
  EXPECT_FALSE(p.SetSourceVar(-1).ok());
  EXPECT_TRUE(p.SetSourceVar(v).ok());
}

TEST_F(PatternTest, ConnectivityOfTransfer) {
  Pattern p = Transfer(types_.soccer_player, types_.soccer_club);
  EXPECT_TRUE(p.IsConnected());
  EXPECT_TRUE(p.ConnectedFrom(0));
  // The reciprocal squad edges make the transfer pattern connected from any
  // variable (c1 -> player -> c2).
  EXPECT_TRUE(p.ConnectedFrom(1));

  // A singleton's target variable has no outgoing edge: not a valid source.
  Pattern s = Singleton(types_.soccer_player, "current_club",
                        types_.soccer_club);
  EXPECT_TRUE(s.ConnectedFrom(0));
  EXPECT_FALSE(s.ConnectedFrom(1));
}

TEST_F(PatternTest, ReachabilityThroughIntermediates) {
  // p1 -> c1 -> p2: p2 reachable from p1 transitively (Figure 2(a)-style).
  Pattern p;
  int p1 = p.AddVar(types_.soccer_player);
  int c1 = p.AddVar(types_.soccer_club);
  int l1 = p.AddVar(types_.soccer_league);
  ASSERT_TRUE(p.AddAction(EditOp::kAdd, p1, "current_club", c1).ok());
  ASSERT_TRUE(p.AddAction(EditOp::kAdd, c1, "in_league", l1).ok());
  ASSERT_TRUE(p.SetSourceVar(p1).ok());
  EXPECT_TRUE(p.IsConnected());
  EXPECT_FALSE(p.ConnectedFrom(c1));
}

TEST_F(PatternTest, CanonicalKeyInvariantUnderVariableRenaming) {
  Pattern a = Transfer(types_.soccer_player, types_.soccer_club);

  // Same pattern, clubs declared in the opposite order, actions permuted.
  Pattern c;
  int pl = c.AddVar(types_.soccer_player);
  int c2 = c.AddVar(types_.soccer_club);
  int c1 = c.AddVar(types_.soccer_club);
  ASSERT_TRUE(c.AddAction(EditOp::kRemove, c2, "squad", pl).ok());
  ASSERT_TRUE(c.AddAction(EditOp::kAdd, c1, "squad", pl).ok());
  ASSERT_TRUE(c.AddAction(EditOp::kRemove, pl, "current_club", c2).ok());
  ASSERT_TRUE(c.AddAction(EditOp::kAdd, pl, "current_club", c1).ok());
  ASSERT_TRUE(c.SetSourceVar(pl).ok());

  EXPECT_EQ(a.CanonicalKey(), c.CanonicalKey());
  EXPECT_TRUE(a == c);
}

TEST_F(PatternTest, CanonicalKeyDistinguishesOpAndTypes) {
  Pattern add = Singleton(types_.soccer_player, "current_club",
                          types_.soccer_club, EditOp::kAdd);
  Pattern remove = Singleton(types_.soccer_player, "current_club",
                             types_.soccer_club, EditOp::kRemove);
  Pattern general = Singleton(types_.athlete, "current_club",
                              types_.soccer_club, EditOp::kAdd);
  EXPECT_NE(add.CanonicalKey(), remove.CanonicalKey());
  EXPECT_NE(add.CanonicalKey(), general.CanonicalKey());
}

TEST_F(PatternTest, CanonicalKeyDistinguishesGluing) {
  // {+cc(c), -cc(c)} (same club var) vs {+cc(c1), -cc(c2)} (two club vars).
  Pattern same;
  int pl = same.AddVar(types_.soccer_player);
  int c = same.AddVar(types_.soccer_club);
  ASSERT_TRUE(same.AddAction(EditOp::kAdd, pl, "current_club", c).ok());
  ASSERT_TRUE(same.AddAction(EditOp::kRemove, pl, "current_club", c).ok());
  ASSERT_TRUE(same.SetSourceVar(pl).ok());

  Pattern two;
  pl = two.AddVar(types_.soccer_player);
  int c1 = two.AddVar(types_.soccer_club);
  int c2 = two.AddVar(types_.soccer_club);
  ASSERT_TRUE(two.AddAction(EditOp::kAdd, pl, "current_club", c1).ok());
  ASSERT_TRUE(two.AddAction(EditOp::kRemove, pl, "current_club", c2).ok());
  ASSERT_TRUE(two.SetSourceVar(pl).ok());

  EXPECT_NE(same.CanonicalKey(), two.CanonicalKey());
}

TEST_F(PatternTest, SpecializationByActionRemoval) {
  Pattern transfer = Transfer(types_.soccer_player, types_.soccer_club);
  Pattern join_only = Singleton(types_.soccer_player, "current_club",
                                types_.soccer_club);
  EXPECT_TRUE(IsSpecializationOf(transfer, join_only, *taxonomy_));
  EXPECT_FALSE(IsSpecializationOf(join_only, transfer, *taxonomy_));
  EXPECT_TRUE(IsStrictSpecializationOf(transfer, join_only, *taxonomy_));
}

TEST_F(PatternTest, SpecializationByTypeGeneralization) {
  // p1 ≺ p2 ≺ p3 from §3's example.
  Pattern p1;
  {
    int pl = p1.AddVar(types_.soccer_player);
    int c1 = p1.AddVar(types_.soccer_club);
    int c2 = p1.AddVar(types_.soccer_club);
    ASSERT_TRUE(p1.AddAction(EditOp::kAdd, pl, "current_club", c1).ok());
    ASSERT_TRUE(p1.AddAction(EditOp::kRemove, pl, "current_club", c2).ok());
    ASSERT_TRUE(p1.SetSourceVar(pl).ok());
  }
  Pattern p2;
  {
    int a = p2.AddVar(types_.athlete);
    int c1 = p2.AddVar(types_.soccer_club);
    int c2 = p2.AddVar(types_.soccer_club);
    ASSERT_TRUE(p2.AddAction(EditOp::kAdd, a, "current_club", c1).ok());
    ASSERT_TRUE(p2.AddAction(EditOp::kRemove, a, "current_club", c2).ok());
    ASSERT_TRUE(p2.SetSourceVar(a).ok());
  }
  Pattern p3 = Singleton(types_.athlete, "current_club", types_.soccer_club);

  EXPECT_TRUE(IsStrictSpecializationOf(p1, p2, *taxonomy_));
  EXPECT_TRUE(IsStrictSpecializationOf(p2, p3, *taxonomy_));
  EXPECT_TRUE(IsStrictSpecializationOf(p1, p3, *taxonomy_));  // transitive
  EXPECT_FALSE(IsStrictSpecializationOf(p3, p1, *taxonomy_));
}

TEST_F(PatternTest, SpecializationIsReflexiveNonStrict) {
  Pattern p = Transfer(types_.soccer_player, types_.soccer_club);
  EXPECT_TRUE(IsSpecializationOf(p, p, *taxonomy_));
  EXPECT_FALSE(IsStrictSpecializationOf(p, p, *taxonomy_));
}

TEST_F(PatternTest, SpecializationRespectsInjectivity) {
  // The general pattern has two distinct club variables; a pattern with a
  // single club variable cannot specialize it (§3: "the assigned team nodes
  // have to be distinct in the realization").
  Pattern two;
  {
    int pl = two.AddVar(types_.soccer_player);
    int c1 = two.AddVar(types_.soccer_club);
    int c2 = two.AddVar(types_.soccer_club);
    ASSERT_TRUE(two.AddAction(EditOp::kAdd, pl, "current_club", c1).ok());
    ASSERT_TRUE(two.AddAction(EditOp::kRemove, pl, "current_club", c2).ok());
    ASSERT_TRUE(two.SetSourceVar(pl).ok());
  }
  Pattern one;
  {
    int pl = one.AddVar(types_.soccer_player);
    int c = one.AddVar(types_.soccer_club);
    ASSERT_TRUE(one.AddAction(EditOp::kAdd, pl, "current_club", c).ok());
    ASSERT_TRUE(one.AddAction(EditOp::kRemove, pl, "current_club", c).ok());
    ASSERT_TRUE(one.SetSourceVar(pl).ok());
  }
  EXPECT_FALSE(IsSpecializationOf(one, two, *taxonomy_));
}

TEST_F(PatternTest, MostSpecificFiltering) {
  Pattern transfer = Transfer(types_.soccer_player, types_.soccer_club);
  Pattern join_only =
      Singleton(types_.soccer_player, "current_club", types_.soccer_club);
  Pattern unrelated =
      Singleton(types_.soccer_player, "award_won", types_.sports_award);

  std::vector<Pattern> most =
      MostSpecificPatterns({transfer, join_only, unrelated}, *taxonomy_);
  ASSERT_EQ(most.size(), 2u);
  EXPECT_EQ(most[0].CanonicalKey(), transfer.CanonicalKey());
  EXPECT_EQ(most[1].CanonicalKey(), unrelated.CanonicalKey());
}

TEST_F(PatternTest, DistinctVarTypes) {
  Pattern p = Transfer(types_.soccer_player, types_.soccer_club);
  EXPECT_EQ(p.DistinctVarTypes().size(), 2u);
}

TEST_F(PatternTest, SubPatternKeepsReferencedVars) {
  Pattern transfer = Transfer(types_.soccer_player, types_.soccer_club);
  // Keep the two "new club" actions: +cc(c1) and +squad(c1 -> p).
  Result<Pattern> sub = SubPattern(transfer, {0, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_vars(), 2u);  // player and c1 only
  EXPECT_EQ(sub->num_actions(), 2u);
  EXPECT_TRUE(sub->IsConnected());
  EXPECT_EQ(sub->var_type(sub->source_var()), types_.soccer_player);
}

TEST_F(PatternTest, SubPatternValidation) {
  Pattern transfer = Transfer(types_.soccer_player, types_.soccer_club);
  EXPECT_FALSE(SubPattern(transfer, {9}).ok());  // out of range
  // Action 3 alone (-squad from c2) does not reference... it does reference
  // the player as target, so the source is kept. An empty selection is the
  // real failure case.
  EXPECT_FALSE(SubPattern(transfer, {}).ok());
}

TEST_F(PatternTest, TraversalOrderBindsSourcesFirst) {
  Pattern p;
  int pl = p.AddVar(types_.soccer_player);
  int c = p.AddVar(types_.soccer_club);
  int l = p.AddVar(types_.soccer_league);
  // Insert the dependent action first: (c -> l) needs c bound.
  ASSERT_TRUE(p.AddAction(EditOp::kAdd, c, "in_league", l).ok());
  ASSERT_TRUE(p.AddAction(EditOp::kAdd, pl, "current_club", c).ok());
  ASSERT_TRUE(p.SetSourceVar(pl).ok());
  Result<std::vector<size_t>> order = PatternTraversalOrder(p);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<size_t>{1, 0}));

  // A disconnected pattern has no traversal order.
  Pattern disconnected;
  int a = disconnected.AddVar(types_.soccer_player);
  int b = disconnected.AddVar(types_.soccer_club);
  int c2 = disconnected.AddVar(types_.soccer_club);
  ASSERT_TRUE(disconnected.AddAction(EditOp::kAdd, b, "squad", c2).ok());
  (void)a;
  ASSERT_TRUE(disconnected.SetSourceVar(a).ok());
  EXPECT_FALSE(PatternTraversalOrder(disconnected).ok());
}

TEST_F(PatternTest, ToStringMentionsTypesAndRelations) {
  Pattern p =
      Singleton(types_.soccer_player, "current_club", types_.soccer_club);
  std::string s = p.ToString(*taxonomy_);
  EXPECT_NE(s.find("soccer_player"), std::string::npos);
  EXPECT_NE(s.find("current_club"), std::string::npos);
  EXPECT_NE(s.find("source="), std::string::npos);
}

}  // namespace
}  // namespace wiclean
