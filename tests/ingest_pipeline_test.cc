// Tests for the staged ingestion pipeline (dump/pipeline.h): determinism
// across worker counts, the in-memory PageSource, custom sinks, and error
// propagation through the parallel path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dump/ingest.h"
#include "dump/page_source.h"
#include "dump/pipeline.h"
#include "revision/revision_store.h"
#include "synth/dump_render.h"
#include "synth/synthesizer.h"

namespace wiclean {
namespace {

/// Byte-exact serialization of a store's full contents: every entity's log
/// in log order. Two stores fingerprint equal iff they hold the same actions
/// in the same per-entity order (including tie-break order of equal
/// timestamps, which depends on global insertion order).
std::string Fingerprint(const RevisionStore& store, size_t num_entities) {
  std::string out;
  for (size_t i = 0; i < num_entities; ++i) {
    const std::vector<Action>& log = store.LogOf(static_cast<EntityId>(i));
    if (log.empty()) continue;
    out += "e" + std::to_string(i) + ":";
    for (const Action& a : log) {
      out += (a.op == EditOp::kAdd ? "+" : "-");
      out += std::to_string(a.subject) + "," + a.relation + "," +
             std::to_string(a.object) + "@" + std::to_string(a.time) + ";";
    }
    out += "\n";
  }
  return out;
}

/// A synth world with plenty of churn (reverts / vandalism noise are on by
/// default in the synthesizer), rendered to a MediaWiki-style dump.
struct Corpus {
  SynthWorld world;
  std::string dump_xml;
};

Corpus MakeCorpus(size_t seeds, uint64_t rng_seed) {
  SynthOptions options;
  options.seed_entities = seeds;
  options.years = 1;
  options.rng_seed = rng_seed;
  Result<SynthWorld> world = Synthesize(options);
  EXPECT_TRUE(world.ok());
  std::ostringstream out;
  EXPECT_TRUE(WriteDump(*world, 0, kSecondsPerYear, &out).ok());
  return Corpus{std::move(world).value(), out.str()};
}

TEST(IngestPipelineTest, ParallelIngestIsByteIdenticalToSequential) {
  Corpus corpus = MakeCorpus(40, 11);
  const size_t n = corpus.world.registry->size();

  std::string baseline;
  IngestStats baseline_stats;
  for (size_t threads : {1u, 4u, 8u}) {
    IngestOptions options;
    options.num_threads = threads;
    options.queue_capacity = 8;  // small queue: force backpressure
    RevisionStore store;
    std::istringstream in(corpus.dump_xml);
    Result<IngestStats> stats =
        IngestDump(&in, *corpus.world.registry, &store, options);
    ASSERT_TRUE(stats.ok()) << "threads=" << threads;
    if (threads == 1) {
      baseline = Fingerprint(store, n);
      baseline_stats = *stats;
      EXPECT_GT(stats->actions, 0u);
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(Fingerprint(store, n), baseline) << "threads=" << threads;
      // Counters are merged in page order, so they are deterministic too.
      EXPECT_EQ(stats->pages, baseline_stats.pages);
      EXPECT_EQ(stats->revisions, baseline_stats.revisions);
      EXPECT_EQ(stats->actions, baseline_stats.actions);
      EXPECT_EQ(stats->unknown_pages, baseline_stats.unknown_pages);
      EXPECT_EQ(stats->unresolved_links, baseline_stats.unresolved_links);
    }
  }
}

TEST(IngestPipelineTest, VectorPageSourceMatchesXmlPath) {
  Corpus corpus = MakeCorpus(20, 23);
  const size_t n = corpus.world.registry->size();

  // The synth round-trip path: render the world straight to in-memory pages
  // (no XML detour) ...
  Result<std::vector<DumpPage>> rendered =
      RenderDumpPages(corpus.world, 0, kSecondsPerYear);
  ASSERT_TRUE(rendered.ok());
  std::vector<DumpPage> pages = std::move(rendered).value();
  ASSERT_FALSE(pages.empty());

  // ... then ingest the same corpus through both sources, parallel.
  IngestOptions options;
  options.num_threads = 4;

  RevisionStore from_xml;
  {
    std::istringstream in(corpus.dump_xml);
    XmlPageSource source(&in);
    RevisionStoreSink sink(&from_xml);
    ASSERT_TRUE(RunIngestPipeline(&source, *corpus.world.registry, &sink,
                                  options)
                    .ok());
  }
  RevisionStore from_memory;
  {
    VectorPageSource source(std::move(pages));
    RevisionStoreSink sink(&from_memory);
    ASSERT_TRUE(RunIngestPipeline(&source, *corpus.world.registry, &sink,
                                  options)
                    .ok());
  }
  EXPECT_EQ(Fingerprint(from_xml, n), Fingerprint(from_memory, n));
}

/// A sink that records the sequence numbers it saw, to pin down the ordering
/// guarantee, and can inject a failure.
class RecordingSink : public ActionSink {
 public:
  explicit RecordingSink(int fail_at = -1) : fail_at_(fail_at) {}

  Status Append(PageActions&& batch) override {
    sequences_.push_back(batch.sequence);
    if (fail_at_ >= 0 &&
        batch.sequence == static_cast<uint64_t>(fail_at_)) {
      return Status::Internal("sink failure injected");
    }
    return Status::OK();
  }

  const std::vector<uint64_t>& sequences() const { return sequences_; }

 private:
  int fail_at_;
  std::vector<uint64_t> sequences_;
};

TEST(IngestPipelineTest, SinkSeesStrictlyIncreasingSequences) {
  Corpus corpus = MakeCorpus(25, 7);
  std::istringstream in(corpus.dump_xml);
  XmlPageSource source(&in);
  RecordingSink sink;
  IngestOptions options;
  options.num_threads = 8;
  options.queue_capacity = 4;
  ASSERT_TRUE(
      RunIngestPipeline(&source, *corpus.world.registry, &sink, options).ok());
  ASSERT_FALSE(sink.sequences().empty());
  for (size_t i = 0; i < sink.sequences().size(); ++i) {
    EXPECT_EQ(sink.sequences()[i], i);  // 0, 1, 2, ... with no gaps
  }
}

TEST(IngestPipelineTest, SinkErrorAbortsParallelRunCleanly) {
  Corpus corpus = MakeCorpus(25, 7);
  std::istringstream in(corpus.dump_xml);
  XmlPageSource source(&in);
  RecordingSink sink(/*fail_at=*/3);
  IngestOptions options;
  options.num_threads = 4;
  options.queue_capacity = 2;
  Result<IngestStats> result =
      RunIngestPipeline(&source, *corpus.world.registry, &sink, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // Ordered merge means nothing past the failing batch reached the sink.
  EXPECT_EQ(sink.sequences().size(), 4u);
}

TEST(IngestPipelineTest, StrictUnknownPageFailsInParallelToo) {
  DumpPage page;
  page.title = "Nobody Registered This";
  std::vector<DumpPage> pages(10, page);
  for (size_t i = 0; i < pages.size(); ++i) pages[i].page_id = i;

  SynthOptions synth_options;
  synth_options.seed_entities = 5;
  Result<SynthWorld> world = Synthesize(synth_options);
  ASSERT_TRUE(world.ok());

  VectorPageSource source(std::move(pages));
  RevisionStore store;
  RevisionStoreSink sink(&store);
  IngestOptions options;
  options.strict_pages = true;
  options.num_threads = 4;
  Result<IngestStats> result =
      RunIngestPipeline(&source, *world->registry, &sink, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.num_actions(), 0u);
}

TEST(IngestPipelineTest, StageTimingsArePopulated) {
  Corpus corpus = MakeCorpus(30, 3);
  for (size_t threads : {1u, 4u}) {
    IngestOptions options;
    options.num_threads = threads;
    RevisionStore store;
    std::istringstream in(corpus.dump_xml);
    Result<IngestStats> stats =
        IngestDump(&in, *corpus.world.registry, &store, options);
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->read_seconds, 0.0);
    EXPECT_GT(stats->parse_seconds, 0.0);  // diffing dominates; never zero
    EXPECT_GE(stats->merge_seconds, 0.0);
    // ToString carries the stage split for CLI / bench reporting.
    EXPECT_NE(stats->ToString().find("parse="), std::string::npos);
  }
}

}  // namespace
}  // namespace wiclean
