#include <gtest/gtest.h>

#include "core/action_index.h"

namespace wiclean {
namespace {

class ActionIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    thing_ = *tax_.AddRoot("thing");
    person_ = *tax_.AddType("person", thing_);
    athlete_ = *tax_.AddType("athlete", person_);
    player_ = *tax_.AddType("player", athlete_);
    club_ = *tax_.AddType("club", thing_);
    registry_ = std::make_unique<EntityRegistry>(&tax_);
    p0_ = *registry_->Register("P0", player_);
    p1_ = *registry_->Register("P1", player_);
    c0_ = *registry_->Register("C0", club_);
  }

  void Add(EntityId subject, const std::string& relation, EntityId object,
           Timestamp time, EditOp op = EditOp::kAdd) {
    store_.Add(Action{op, subject, relation, object, time});
  }

  TypeTaxonomy tax_;
  TypeId thing_, person_, athlete_, player_, club_;
  std::unique_ptr<EntityRegistry> registry_;
  RevisionStore store_;
  EntityId p0_, p1_, c0_;
};

TEST_F(ActionIndexTest, KeyEncodingIsInjective) {
  AbstractActionKey a{EditOp::kAdd, 1, "r", 2};
  AbstractActionKey b{EditOp::kRemove, 1, "r", 2};
  AbstractActionKey c{EditOp::kAdd, 1, "r2", 2};
  AbstractActionKey d{EditOp::kAdd, 12, "r", 2};
  EXPECT_NE(a.Encode(), b.Encode());
  EXPECT_NE(a.Encode(), c.Encode());
  EXPECT_NE(a.Encode(), d.Encode());
  EXPECT_EQ(a.Encode(), (AbstractActionKey{EditOp::kAdd, 1, "r", 2}.Encode()));
}

TEST_F(ActionIndexTest, AbstractionLevelsRespectLift) {
  Add(p0_, "current_club", c0_, 10);
  // player has ancestors player < athlete < person < thing; club < thing.
  {
    ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100},
                      /*max_abstraction_lift=*/0);
    index.AddEntities({p0_});
    // Base types only: 1 entry.
    EXPECT_EQ(index.entries().size(), 1u);
  }
  {
    ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100},
                      /*max_abstraction_lift=*/1);
    index.AddEntities({p0_});
    // Source at {player, athlete} x target at {club, thing} = 4 entries.
    EXPECT_EQ(index.entries().size(), 4u);
  }
  {
    ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100},
                      /*max_abstraction_lift=*/3);
    index.AddEntities({p0_});
    // Source at 4 levels x target capped at 2 levels = 8 entries.
    EXPECT_EQ(index.entries().size(), 8u);
  }
}

TEST_F(ActionIndexTest, RealizationRowsCarryTimestamps) {
  Add(p0_, "current_club", c0_, 42);
  ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100}, 0);
  index.AddEntities({p0_});
  const AbstractActionEntry& entry = index.entries().begin()->second;
  ASSERT_EQ(entry.realizations.num_rows(), 1u);
  EXPECT_EQ(entry.realizations.column(0).Int64At(0), p0_);
  EXPECT_EQ(entry.realizations.column(1).Int64At(0), c0_);
  EXPECT_EQ(entry.realizations.column(2).Int64At(0), 42);
}

TEST_F(ActionIndexTest, IngestionIsIdempotentPerEntity) {
  Add(p0_, "current_club", c0_, 10);
  ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100}, 0);
  EXPECT_EQ(index.AddEntities({p0_}), 1u);
  EXPECT_EQ(index.AddEntities({p0_}), 0u);  // already ingested
  EXPECT_EQ(index.AddEntities({p0_, p1_}), 1u);
  EXPECT_TRUE(index.HasEntity(p0_));
  EXPECT_EQ(index.num_entities_ingested(), 2u);
  const AbstractActionEntry& entry = index.entries().begin()->second;
  EXPECT_EQ(entry.realizations.num_rows(), 1u);  // no duplicate rows
}

TEST_F(ActionIndexTest, WindowFiltersAndReduces) {
  Add(p0_, "current_club", c0_, 10);
  Add(p0_, "current_club", c0_, 20, EditOp::kRemove);  // cancels within window
  Add(p1_, "current_club", c0_, 150);                  // outside window
  ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100}, 0);
  index.AddEntities({p0_, p1_});
  EXPECT_TRUE(index.entries().empty());
  EXPECT_EQ(index.num_actions_ingested(), 0u);
}

TEST_F(ActionIndexTest, FilterRealizationsByBindings) {
  Add(p0_, "current_club", c0_, 10);
  Add(p1_, "current_club", c0_, 11);
  ActionIndex index(registry_.get(), &store_, TimeWindow{0, 100}, 0);
  index.AddEntities({p0_, p1_});
  const relational::Table& all = index.entries().begin()->second.realizations;
  ASSERT_EQ(all.num_rows(), 2u);

  relational::Table only_p0 =
      FilterRealizationsByBindings(all, p0_, kInvalidEntityId);
  ASSERT_EQ(only_p0.num_rows(), 1u);
  EXPECT_EQ(only_p0.column(0).Int64At(0), p0_);

  relational::Table both_free =
      FilterRealizationsByBindings(all, kInvalidEntityId, kInvalidEntityId);
  EXPECT_EQ(both_free.num_rows(), 2u);

  relational::Table none =
      FilterRealizationsByBindings(all, p0_, p1_);  // mismatched pair
  EXPECT_EQ(none.num_rows(), 0u);
}

}  // namespace
}  // namespace wiclean
