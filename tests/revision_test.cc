#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "revision/revision_store.h"
#include "revision/window.h"

namespace wiclean {
namespace {

Action MakeAction(EditOp op, EntityId subject, const std::string& relation,
                  EntityId object, Timestamp time) {
  Action a;
  a.op = op;
  a.subject = subject;
  a.relation = relation;
  a.object = object;
  a.time = time;
  return a;
}

// ---------- windows ----------

TEST(WindowTest, SplitTimelineExact) {
  std::vector<TimeWindow> w = SplitTimeline(0, 4 * kSecondsPerWeek,
                                            2 * kSecondsPerWeek);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].begin, 0);
  EXPECT_EQ(w[0].end, 2 * kSecondsPerWeek);
  EXPECT_EQ(w[1].begin, 2 * kSecondsPerWeek);
}

TEST(WindowTest, SplitTimelineTruncatesLast) {
  std::vector<TimeWindow> w = SplitTimeline(0, 5, 2);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[2].width(), 1);
}

// Regression (PR 2, found by UBSan): `b + width` overflowed int64 when the
// timeline reached toward INT64_MAX (timestamps are raw dump input). The
// split must stay exact — no UB, last window truncated at timeline_end.
TEST(WindowTest, SplitTimelineNearInt64MaxDoesNotOverflow) {
  const Timestamp end = std::numeric_limits<Timestamp>::max();
  std::vector<TimeWindow> w =
      SplitTimeline(end - 3 * kSecondsPerDay, end, kSecondsPerWeek);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].begin, end - 3 * kSecondsPerDay);
  EXPECT_EQ(w[0].end, end);

  // Whole-range split: both ends extreme, multiple windows.
  const Timestamp begin = end - 2 * kSecondsPerWeek;
  w = SplitTimeline(begin, end, kSecondsPerWeek);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1].end, end);
}

TEST(WindowTest, SplitTimelineDegenerateInputs) {
  EXPECT_TRUE(SplitTimeline(0, 10, 0).empty());
  EXPECT_TRUE(SplitTimeline(10, 10, 2).empty());
  EXPECT_TRUE(SplitTimeline(10, 0, 2).empty());
}

TEST(WindowTest, Contains) {
  TimeWindow w{10, 20};
  EXPECT_TRUE(w.Contains(10));
  EXPECT_TRUE(w.Contains(19));
  EXPECT_FALSE(w.Contains(20));  // half-open
  EXPECT_FALSE(w.Contains(9));
}

TEST(WindowTest, YearSplitsIntoExactly26TwoWeekWindows) {
  EXPECT_EQ(SplitTimeline(0, kSecondsPerYear, 2 * kSecondsPerWeek).size(),
            26u);
}

// ---------- store ----------

TEST(RevisionStoreTest, LogsSortedByTime) {
  RevisionStore store;
  store.Add(MakeAction(EditOp::kAdd, 1, "r", 2, 50));
  store.Add(MakeAction(EditOp::kAdd, 1, "r", 3, 10));
  store.Add(MakeAction(EditOp::kRemove, 1, "r", 2, 30));
  const std::vector<Action>& log = store.LogOf(1);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      log.begin(), log.end(),
      [](const Action& a, const Action& b) { return a.time < b.time; }));
  EXPECT_EQ(store.num_actions(), 3u);
  EXPECT_TRUE(store.LogOf(42).empty());
}

TEST(RevisionStoreTest, ActionsInWindowFiltersHalfOpen) {
  RevisionStore store;
  for (Timestamp t : {5, 10, 15, 20}) {
    store.Add(MakeAction(EditOp::kAdd, 1, "r", t, t));
  }
  std::vector<Action> in = store.ActionsInWindow(1, TimeWindow{10, 20});
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(in[0].time, 10);
  EXPECT_EQ(in[1].time, 15);
}

TEST(RevisionStoreTest, ActionsOfEntitiesInWindow) {
  RevisionStore store;
  store.Add(MakeAction(EditOp::kAdd, 1, "r", 9, 5));
  store.Add(MakeAction(EditOp::kAdd, 2, "r", 9, 6));
  store.Add(MakeAction(EditOp::kAdd, 3, "r", 9, 7));
  std::vector<Action> got =
      store.ActionsOfEntitiesInWindow({1, 3}, TimeWindow{0, 10});
  EXPECT_EQ(got.size(), 2u);
}

TEST(RevisionStoreTest, TimeSpan) {
  RevisionStore store;
  Timestamp b = 0, e = 0;
  EXPECT_FALSE(store.TimeSpan(&b, &e));
  store.Add(MakeAction(EditOp::kAdd, 1, "r", 2, 100));
  store.Add(MakeAction(EditOp::kAdd, 2, "r", 3, 7));
  ASSERT_TRUE(store.TimeSpan(&b, &e));
  EXPECT_EQ(b, 7);
  EXPECT_EQ(e, 100);
}

// ---------- reduction ----------

TEST(ReduceTest, InversePairCancels) {
  std::vector<Action> in = {
      MakeAction(EditOp::kAdd, 1, "r", 2, 10),
      MakeAction(EditOp::kRemove, 1, "r", 2, 20),
  };
  EXPECT_TRUE(ReduceActions(in).empty());
}

TEST(ReduceTest, ChurnReducesToNetEffect) {
  // add, remove, add  ->  net add (Figure 1's rumor churn).
  std::vector<Action> in = {
      MakeAction(EditOp::kAdd, 1, "r", 2, 10),
      MakeAction(EditOp::kRemove, 1, "r", 2, 20),
      MakeAction(EditOp::kAdd, 1, "r", 2, 30),
  };
  std::vector<Action> out = ReduceActions(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, EditOp::kAdd);
  EXPECT_EQ(out[0].time, 30);  // timestamp of the last edit survives
}

TEST(ReduceTest, RemoveThenAddCancels) {
  // The edge existed before the window; removing and re-adding restores it.
  std::vector<Action> in = {
      MakeAction(EditOp::kRemove, 1, "r", 2, 10),
      MakeAction(EditOp::kAdd, 1, "r", 2, 20),
  };
  EXPECT_TRUE(ReduceActions(in).empty());
}

TEST(ReduceTest, NoisyDuplicatesCollapse) {
  // Double-add: net effect is still a single add.
  std::vector<Action> in = {
      MakeAction(EditOp::kAdd, 1, "r", 2, 10),
      MakeAction(EditOp::kAdd, 1, "r", 2, 20),
  };
  std::vector<Action> out = ReduceActions(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, EditOp::kAdd);
}

TEST(ReduceTest, DistinctEdgesIndependent) {
  std::vector<Action> in = {
      MakeAction(EditOp::kAdd, 1, "r", 2, 10),
      MakeAction(EditOp::kAdd, 1, "r", 3, 11),
      MakeAction(EditOp::kRemove, 1, "r", 2, 12),
      MakeAction(EditOp::kAdd, 1, "s", 2, 13),
  };
  std::vector<Action> out = ReduceActions(in);
  ASSERT_EQ(out.size(), 2u);
  // Output preserves first-appearance order of surviving edges.
  EXPECT_EQ(out[0].object, 3);
  EXPECT_EQ(out[1].relation, "s");
}

TEST(ReduceTest, OrderInsensitive) {
  // Reduction depends on timestamps, not input order.
  std::vector<Action> in = {
      MakeAction(EditOp::kAdd, 1, "r", 2, 10),
      MakeAction(EditOp::kRemove, 1, "r", 2, 20),
      MakeAction(EditOp::kAdd, 1, "r", 2, 30),
  };
  std::vector<Action> shuffled = {in[2], in[0], in[1]};
  std::vector<Action> a = ReduceActions(in);
  std::vector<Action> b = ReduceActions(shuffled);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0], b[0]);
}

TEST(ReduceTest, IdempotentProperty) {
  // Reducing a reduced set changes nothing, across random action soups.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Action> soup;
    for (int i = 0; i < 60; ++i) {
      soup.push_back(MakeAction(
          rng.NextBernoulli(0.5) ? EditOp::kAdd : EditOp::kRemove,
          static_cast<EntityId>(rng.NextBelow(3)), "r",
          static_cast<EntityId>(rng.NextBelow(3) + 10),
          static_cast<Timestamp>(rng.NextBelow(1000))));
    }
    std::vector<Action> once = ReduceActions(soup);
    std::vector<Action> twice = ReduceActions(once);
    EXPECT_EQ(once, twice);
  }
}

TEST(ActionTest, InverseDetection) {
  Action add = MakeAction(EditOp::kAdd, 1, "r", 2, 10);
  Action remove = MakeAction(EditOp::kRemove, 1, "r", 2, 20);
  EXPECT_TRUE(remove.IsInverseOf(add));
  EXPECT_TRUE(add.IsInverseOf(remove));
  EXPECT_FALSE(add.IsInverseOf(add));
  Action other = MakeAction(EditOp::kRemove, 1, "r", 3, 20);
  EXPECT_FALSE(other.IsInverseOf(add));
}

TEST(ActionTest, ToStringFormat) {
  Action a = MakeAction(EditOp::kRemove, 12, "current_club", 7, 3600);
  EXPECT_EQ(a.ToString(), "(-, (12, current_club, 7), t=3600)");
}

}  // namespace
}  // namespace wiclean
