// The WiClean command-line tool: end-to-end mining and error detection over
// file-based inputs (a MediaWiki-style dump plus taxonomy/alignment TSVs —
// the offline equivalent of the paper's crawled data + DBPedia alignment).
//
// Subcommands:
//
//   wiclean synth --out-dir DIR [--seeds N] [--years N] [--rng-seed S]
//                 [--domains soccer,cinema,politics,software]
//     Generates a demo corpus: DIR/dump.xml, DIR/taxonomy.tsv,
//     DIR/alignment.tsv.
//
//   wiclean ingest --dump F --taxonomy F --alignment F --out F.wcal
//                  [--stats-json F] [--block-actions N] [--threads N]
//     Runs the parse/diff pipeline once and serializes the recovered action
//     stream into a WCAL binary action log (src/log/). Every other
//     subcommand accepts --action-log F.wcal in place of --dump and replays
//     the log into the store, skipping XML and wikitext entirely.
//
//   wiclean mine --dump F --taxonomy F --alignment F --seed-type NAME
//                [--threshold X] [--json FILE] [--threads N]
//     Runs the window-and-pattern search (Algorithm 2) and prints a summary;
//     optionally writes a JSON report. --threads parallelizes dump
//     ingestion (parse/diff pipeline) with identical output.
//
//   wiclean detect --dump F --taxonomy F --alignment F --seed-type NAME
//                  [--threshold X] [--csv FILE] [--max-print N] [--threads N]
//     Mines, then runs partial-update detection (Algorithm 3) on every
//     discovered pattern and reports the signaled potential errors.
//     With --patterns SNAPSHOT the mining step is skipped and the packed
//     patterns are used instead; add --online 1 to replay the revision log
//     through the incremental serving detector (identical alert set).
//
//   wiclean pack --dump F --taxonomy F --alignment F --seed-type NAME
//                --out SNAPSHOT [--threshold X] [--corpus-id ID]
//     Mines and writes the discovered patterns into a versioned,
//     checksummed binary snapshot (the serving artifact).
//
//   wiclean serve --dump F --taxonomy F --alignment F --patterns SNAPSHOT
//                 [--feed-threads N] [--allowed-skew SECONDS] [--json FILE]
//                 [--tenants N] [--reload F2,F3] [--max-tenants N]
//                 [--feed-deadline-ms D] [--queue-capacity N]
//     Replays the corpus's revision log as an event stream through the
//     multi-tenant online detector service and reports alerts plus
//     throughput. --tenants staggers N sessions along the feed; --reload
//     hot-swaps further snapshot files mid-feed (sessions keep the epoch
//     they pinned at open); --feed-deadline-ms turns sustained
//     backpressure into explicit load shedding.
//
// Exit status: 0 on success, 1 on any error (message on stderr).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"

#include "core/partial.h"
#include "core/window_search.h"
#include "dump/alignment.h"
#include "dump/ingest.h"
#include "dump/page_source.h"
#include "dump/pipeline.h"
#include "dump/quarantine.h"
#include "log/action_log_writer.h"
#include "log/replay.h"
#include "report/report.h"
#include "serve/detector_service.h"
#include "serve/detector_session.h"
#include "serve/pattern_store.h"
#include "synth/dump_render.h"
#include "synth/synthesizer.h"

namespace wiclean {
namespace {

/// Parsed --key value pairs; positional args rejected.
class Args {
 public:
  static Result<Args> Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.size() < 3 || arg.substr(0, 2) != "--") {
        return Status::InvalidArgument("unexpected argument '" +
                                       std::string(arg) + "'");
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for '" +
                                       std::string(arg) + "'");
      }
      args.values_[std::string(arg.substr(2))] = argv[++i];
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  Result<std::string> Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag --" + key);
    }
    return it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(),
                                                        nullptr);
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "wiclean: %s\n", status.ToString().c_str());
  return 1;
}

/// Shared loading for mine/detect: taxonomy + alignment + dump -> store.
struct LoadedCorpus {
  std::unique_ptr<TypeTaxonomy> taxonomy;
  std::unique_ptr<EntityRegistry> registry;
  RevisionStore store;
  TypeId seed_type = kInvalidTypeId;
  Timestamp begin = 0;
  Timestamp end = 0;
};

/// The ingest-side flags shared by every subcommand that builds a store:
/// worker count, fault policy (plus its quarantine sink), resource guards.
struct IngestArgs {
  size_t num_threads = 1;
  ErrorPolicy on_error = ErrorPolicy::kStrict;
  std::unique_ptr<DirectoryQuarantineSink> quarantine;  // kQuarantine only
  IngestLimits limits;

  IngestOptions ToIngestOptions() const {
    IngestOptions options;
    options.num_threads = num_threads;
    options.on_error = on_error;
    options.quarantine = quarantine.get();
    options.limits = limits;
    return options;
  }
};

Result<IngestArgs> ParseIngestArgs(const Args& args) {
  IngestArgs parsed;
  // --threads N fans the parse/diff (or block-decode) stage out across N
  // pipeline workers; the resulting store is identical to a sequential
  // ingest (ordered merge).
  int64_t threads = args.GetInt("threads", 1);
  if (threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  parsed.num_threads = static_cast<size_t>(threads);

  // --on-error selects the fault policy; strict (the default) fails fast.
  std::string on_error = args.Get("on-error", "strict");
  if (on_error == "strict") {
    parsed.on_error = ErrorPolicy::kStrict;
  } else if (on_error == "skip") {
    parsed.on_error = ErrorPolicy::kSkip;
  } else if (on_error == "quarantine") {
    parsed.on_error = ErrorPolicy::kQuarantine;
    WICLEAN_ASSIGN_OR_RETURN(std::string quarantine_dir,
                             args.Require("quarantine-dir"));
    parsed.quarantine =
        std::make_unique<DirectoryQuarantineSink>(quarantine_dir);
    WICLEAN_RETURN_IF_ERROR(parsed.quarantine->status());
  } else {
    return Status::InvalidArgument(
        "--on-error must be strict, skip, or quarantine (got '" + on_error +
        "')");
  }
  parsed.limits.max_revision_bytes =
      static_cast<size_t>(args.GetInt("max-revision-bytes", 0));
  parsed.limits.max_revisions_per_page =
      static_cast<size_t>(args.GetInt("max-revisions-per-page", 0));
  parsed.limits.max_actions_per_page =
      static_cast<size_t>(args.GetInt("max-actions-per-page", 0));
  parsed.limits.max_infobox_nesting_depth =
      static_cast<int>(args.GetInt("max-infobox-depth", 0));
  return parsed;
}

/// Loads --taxonomy and --alignment into a fresh taxonomy + registry pair
/// (shared by every corpus-consuming subcommand and `wiclean ingest`).
struct LoadedAlignment {
  std::unique_ptr<TypeTaxonomy> taxonomy;
  std::unique_ptr<EntityRegistry> registry;
};

Result<LoadedAlignment> LoadAlignmentFiles(const Args& args) {
  LoadedAlignment loaded;
  WICLEAN_ASSIGN_OR_RETURN(std::string taxonomy_path,
                           args.Require("taxonomy"));
  std::ifstream taxonomy_file(taxonomy_path);
  if (!taxonomy_file) {
    return Status::NotFound("cannot open taxonomy file " + taxonomy_path);
  }
  WICLEAN_ASSIGN_OR_RETURN(loaded.taxonomy, LoadTaxonomy(&taxonomy_file));

  WICLEAN_ASSIGN_OR_RETURN(std::string alignment_path,
                           args.Require("alignment"));
  std::ifstream alignment_file(alignment_path);
  if (!alignment_file) {
    return Status::NotFound("cannot open alignment file " + alignment_path);
  }
  WICLEAN_ASSIGN_OR_RETURN(
      loaded.registry, LoadAlignment(&alignment_file, loaded.taxonomy.get()));
  return loaded;
}

Result<LoadedCorpus> LoadCorpus(const Args& args,
                                bool require_seed_type = true) {
  LoadedCorpus corpus;

  WICLEAN_ASSIGN_OR_RETURN(LoadedAlignment aligned, LoadAlignmentFiles(args));
  corpus.taxonomy = std::move(aligned.taxonomy);
  corpus.registry = std::move(aligned.registry);

  WICLEAN_ASSIGN_OR_RETURN(IngestArgs ingest_args, ParseIngestArgs(args));

  // --action-log replaces --dump: the store is rebuilt by replaying a WCAL
  // file written by `wiclean ingest`, skipping XML parse and diff entirely.
  // Both paths produce byte-identical stores for the same source dump.
  std::string action_log_path = args.Get("action-log", "");
  IngestStats stats;
  if (!action_log_path.empty()) {
    ReplayOptions replay_options;
    replay_options.num_threads = ingest_args.num_threads;
    replay_options.on_error = ingest_args.on_error;
    replay_options.quarantine = ingest_args.quarantine.get();
    WICLEAN_ASSIGN_OR_RETURN(
        stats,
        ReplayActionLogFile(action_log_path, &corpus.store, replay_options));
    std::fprintf(stderr, "replayed %s (%zu thread%s): %s\n",
                 action_log_path.c_str(), ingest_args.num_threads,
                 ingest_args.num_threads == 1 ? "" : "s",
                 stats.ToString().c_str());
  } else {
    WICLEAN_ASSIGN_OR_RETURN(std::string dump_path, args.Require("dump"));
    std::ifstream dump_file(dump_path);
    if (!dump_file) {
      return Status::NotFound("cannot open dump file " + dump_path);
    }
    WICLEAN_ASSIGN_OR_RETURN(
        stats, IngestDump(&dump_file, *corpus.registry, &corpus.store,
                          ingest_args.ToIngestOptions()));
    std::fprintf(stderr, "ingested (%zu thread%s): %s\n",
                 ingest_args.num_threads,
                 ingest_args.num_threads == 1 ? "" : "s",
                 stats.ToString().c_str());
  }

  if (require_seed_type) {
    WICLEAN_ASSIGN_OR_RETURN(std::string seed_name,
                             args.Require("seed-type"));
    WICLEAN_ASSIGN_OR_RETURN(corpus.seed_type,
                             corpus.taxonomy->Find(seed_name));
  }

  if (!corpus.store.TimeSpan(&corpus.begin, &corpus.end)) {
    return Status::FailedPrecondition("dump contains no link edits");
  }
  // Round the timeline outward to whole days so windows are stable. The
  // upper bound saturates instead of overflowing: timestamps are raw dump
  // input, so `end` can sit arbitrarily close to INT64_MAX.
  corpus.begin = (corpus.begin / kSecondsPerDay) * kSecondsPerDay;
  Timestamp end_day = corpus.end / kSecondsPerDay;
  if (end_day < std::numeric_limits<Timestamp>::max() / kSecondsPerDay) {
    corpus.end = (end_day + 1) * kSecondsPerDay;
  }
  return corpus;
}

Result<WindowSearchResult> RunSearch(const LoadedCorpus& corpus,
                                     const Args& args) {
  WindowSearchOptions options;
  options.initial_threshold = args.GetDouble("threshold", 0.7);
  options.miner.max_abstraction_lift =
      static_cast<int>(args.GetInt("abstraction-lift", 1));
  options.miner.max_pattern_actions =
      static_cast<size_t>(args.GetInt("max-actions", 6));
  // Mining-internal parallelism (candidate evaluation); output is invariant
  // under this knob. Distinct from --threads, which parallelizes ingest.
  options.miner.num_threads =
      static_cast<size_t>(args.GetInt("mine-threads", 1));
  options.miner.profile_workingset =
      args.Get("profile-workingset", "") == "1" ||
      args.Get("profile-workingset", "") == "true";
  options.mine_relative = true;
  WindowSearch search(corpus.registry.get(), &corpus.store, options);
  return search.Run(corpus.seed_type, corpus.begin, corpus.end);
}

ReportProvenance ToReportProvenance(const SnapshotProvenance& p) {
  ReportProvenance out;
  out.snapshot_format_version = kSnapshotFormatVersion;
  out.corpus_id = p.corpus_id;
  out.tool = p.tool;
  out.created_unix = p.created_unix;
  out.frequency_threshold = p.frequency_threshold;
  out.max_abstraction_lift = p.max_abstraction_lift;
  out.max_pattern_actions = p.max_pattern_actions;
  out.mine_relative = p.mine_relative;
  return out;
}

/// The corpus's revision log as one canonical event stream: all per-entity
/// logs concatenated (entity-id order), sequence-stamped, then stably sorted
/// by timestamp. The pre-sort sequence rank preserves per-entity log order
/// for equal timestamps, which is exactly the tie order batch reduction sees.
std::vector<std::pair<Action, uint64_t>> BuildCanonicalFeed(
    const EntityRegistry& registry, const RevisionStore& store) {
  std::vector<std::pair<Action, uint64_t>> events;
  for (EntityId e = 0; e < static_cast<EntityId>(registry.size()); ++e) {
    for (const Action& a : store.LogOf(e)) {
      events.emplace_back(a, static_cast<uint64_t>(events.size()));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.time < b.first.time;
                   });
  return events;
}

int PrintReports(const LoadedCorpus& corpus,
                 const std::vector<PartialUpdateReport>& reports,
                 const Args& args) {
  size_t total_signals = 0;
  for (const PartialUpdateReport& report : reports) {
    total_signals += report.partials.size();
  }
  std::printf("%zu pattern(s) scanned, %zu potential error(s)\n",
              reports.size(), total_signals);
  size_t max_print = static_cast<size_t>(args.GetInt("max-print", 20));
  size_t printed = 0;
  for (const PartialUpdateReport& report : reports) {
    for (const PartialRealization& pr : report.partials) {
      if (printed++ >= max_print) break;
      std::printf("  potential error in %s:",
                  report.window.ToString().c_str());
      for (size_t mi : pr.missing_actions) {
        const AbstractAction& a = report.pattern.actions()[mi];
        auto name = [&](int v) -> std::string {
          return pr.bindings[v].has_value()
                     ? corpus.registry->Get(*pr.bindings[v]).name
                     : "?";
        };
        std::printf(" missing [%s %s --%s--> %s]",
                    a.op == EditOp::kAdd ? "+" : "-",
                    name(a.source_var).c_str(), a.relation.c_str(),
                    name(a.target_var).c_str());
      }
      std::printf("\n");
    }
  }
  if (printed > max_print) {
    std::printf("  ... (%zu more; use --csv to export all)\n",
                printed - max_print);
  }
  return 0;
}

int WriteOptionalOutputs(const LoadedCorpus& corpus,
                         const std::vector<PartialUpdateReport>& reports,
                         const ReportProvenance* provenance,
                         const Args& args) {
  std::string json_path = args.Get("json", "");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) return Fail(Status::Internal("cannot write " + json_path));
    Status status = WriteDetectionReportsJson(reports, *corpus.taxonomy,
                                              *corpus.registry, &f,
                                              provenance);
    if (!status.ok()) return Fail(status);
    std::printf("JSON report written to %s\n", json_path.c_str());
  }
  std::string csv_path = args.Get("csv", "");
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    if (!f) return Fail(Status::Internal("cannot write " + csv_path));
    std::vector<std::pair<const PartialUpdateReport*, std::string>> rows;
    for (const PartialUpdateReport& report : reports) {
      rows.push_back({&report, report.pattern.ToString(*corpus.taxonomy)});
    }
    Status status = WriteSignalsCsv(rows, *corpus.registry, &f);
    if (!status.ok()) return Fail(status);
    std::printf("CSV written to %s\n", csv_path.c_str());
  }
  return 0;
}

int RunPack(const Args& args) {
  Result<LoadedCorpus> corpus = LoadCorpus(args);
  if (!corpus.ok()) return Fail(corpus.status());
  Result<std::string> out_path = args.Require("out");
  if (!out_path.ok()) return Fail(out_path.status());
  Result<WindowSearchResult> result = RunSearch(*corpus, args);
  if (!result.ok()) return Fail(result.status());

  PatternSnapshot snapshot;
  snapshot.provenance.corpus_id =
      args.Get("corpus-id", args.Get("dump", ""));
  snapshot.provenance.tool = "wiclean pack";
  snapshot.provenance.created_unix = args.GetInt("created-unix", 0);
  snapshot.provenance.frequency_threshold =
      args.GetDouble("threshold", 0.7);
  snapshot.provenance.max_abstraction_lift =
      static_cast<int32_t>(args.GetInt("abstraction-lift", 1));
  snapshot.provenance.max_pattern_actions =
      static_cast<uint64_t>(args.GetInt("max-actions", 6));
  snapshot.provenance.mine_relative = true;
  for (const DiscoveredPattern& dp : result->patterns) {
    snapshot.patterns.push_back(StoredPattern{dp.mined.pattern,
                                              dp.mined.window,
                                              dp.mined.frequency,
                                              dp.mined.support, dp.threshold});
  }
  Status status = SaveSnapshotFile(snapshot, *corpus->taxonomy, *out_path);
  if (!status.ok()) return Fail(status);
  // Verify the artifact is loadable before declaring success.
  Result<PatternSnapshot> reloaded =
      LoadSnapshotFile(*out_path, *corpus->taxonomy);
  if (!reloaded.ok()) return Fail(reloaded.status());
  std::printf("packed %zu pattern(s) into %s\n", snapshot.patterns.size(),
              out_path->c_str());
  return 0;
}

/// Shared online path of `wiclean serve` and `wiclean detect --online 1`:
/// replays the corpus's revision log through a multi-tenant DetectorService
/// against the packed patterns. One tenant replaying the full stream is the
/// classic one-shot session; --tenants staggers additional sessions along
/// the feed, and --reload hot-swaps further snapshot files mid-feed (tenants
/// opened later pin the newer epoch — in-flight ones are untouched).
int RunOnline(const LoadedCorpus& corpus, const PatternSnapshot& snapshot,
              const Args& args) {
  DetectorServiceOptions options;
  int64_t feed_threads = args.GetInt("feed-threads", 1);
  if (feed_threads < 1) {
    return Fail(Status::InvalidArgument("--feed-threads must be >= 1"));
  }
  options.shards_per_tenant = static_cast<size_t>(feed_threads);
  options.detector.allowed_skew = args.GetInt("allowed-skew", 0);
  options.detector.detector.max_abstraction_lift =
      snapshot.provenance.max_abstraction_lift;
  int64_t max_tenants = args.GetInt("max-tenants", 64);
  if (max_tenants < 1) {
    return Fail(Status::InvalidArgument("--max-tenants must be >= 1"));
  }
  options.max_tenants = static_cast<size_t>(max_tenants);
  // Default 0 = block on backpressure: the faithful batch-replay mode. A
  // positive deadline turns sustained overload into explicit shed events.
  options.feed_deadline_ms = args.GetInt("feed-deadline-ms", 0);
  options.tenant_queue_capacity =
      static_cast<size_t>(args.GetInt("queue-capacity", 256));

  int64_t num_tenants = args.GetInt("tenants", 1);
  if (num_tenants < 1) {
    return Fail(Status::InvalidArgument("--tenants must be >= 1"));
  }
  std::vector<std::string> reload_paths;
  for (const std::string& part : SplitString(args.Get("reload", ""), ',')) {
    if (!part.empty()) reload_paths.push_back(part);
  }

  std::vector<std::pair<Action, uint64_t>> feed =
      BuildCanonicalFeed(*corpus.registry, corpus.store);

  DetectorService service(corpus.registry.get(), options);
  service.PublishSnapshot(snapshot);

  // Schedule: tenant i opens at feed fraction i/N (tenant 0 sees the whole
  // stream and is the one whose report is printed); reload j publishes at
  // fraction (j+1)/(k+1). Feeding is index-driven so runs are reproducible.
  struct OpenTenant {
    TenantId id = 0;
    uint64_t fed = 0;
    uint64_t shed = 0;
  };
  std::vector<OpenTenant> tenants;
  std::vector<size_t> open_at(static_cast<size_t>(num_tenants), 0);
  for (size_t i = 0; i < open_at.size(); ++i) {
    open_at[i] = feed.size() * i / static_cast<size_t>(num_tenants);
  }
  std::vector<size_t> reload_at(reload_paths.size(), 0);
  for (size_t j = 0; j < reload_paths.size(); ++j) {
    reload_at[j] = feed.size() * (j + 1) / (reload_paths.size() + 1);
  }

  size_t next_open = 0;
  size_t next_reload = 0;
  uint64_t reloads_done = 0;
  Timer wall;
  for (size_t i = 0; i <= feed.size(); ++i) {
    while (next_reload < reload_at.size() && reload_at[next_reload] <= i) {
      Result<EpochId> epoch =
          service.PublishSnapshotFile(reload_paths[next_reload]);
      if (!epoch.ok()) {
        // A bad reload (missing/corrupt file) is contained: the previous
        // epoch keeps serving every tenant, including ones not yet opened.
        std::fprintf(stderr, "reload %s rejected: %s\n",
                     reload_paths[next_reload].c_str(),
                     epoch.status().ToString().c_str());
      } else {
        ++reloads_done;
        std::fprintf(stderr, "reload %s published as epoch %llu at event %zu\n",
                     reload_paths[next_reload].c_str(),
                     static_cast<unsigned long long>(*epoch), i);
      }
      ++next_reload;
    }
    while (next_open < open_at.size() && open_at[next_open] <= i) {
      Result<TenantId> id = service.OpenSession();
      if (!id.ok()) return Fail(id.status());
      tenants.push_back(OpenTenant{*id, 0, 0});
      ++next_open;
    }
    if (i == feed.size()) break;
    for (OpenTenant& t : tenants) {
      // Explicit canonical sequence: the pre-sort entity-log rank, not the
      // feed index — keeps (time, sequence) tie-breaking identical to the
      // batch path even if the canonical ordering ever changes.
      switch (service.Feed(t.id, feed[i].first, feed[i].second)) {
        case FeedResult::kOk:
          ++t.fed;
          break;
        case FeedResult::kOverloaded:
          ++t.shed;
          break;
        case FeedResult::kQuarantined: {
          Result<QuarantineCause> cause = service.cause(t.id);
          return Fail(Status::Internal(
              "tenant " + std::to_string(t.id) + " quarantined: " +
              (cause.ok() ? cause->ToString() : cause.status().ToString())));
        }
        case FeedResult::kUnknownTenant:
          return Fail(Status::Internal("tenant vanished mid-feed"));
      }
    }
  }

  std::vector<TenantReport> closed;
  for (const OpenTenant& t : tenants) {
    Result<TenantReport> report = service.CloseSession(t.id);
    if (!report.ok()) return Fail(report.status());
    closed.push_back(std::move(report).value());
  }
  double seconds = wall.ElapsedSeconds();

  const TenantReport& primary = closed.front();
  std::fprintf(stderr,
               "served %llu event(s) on %zu shard thread(s) in %.3fs "
               "(%.0f actions/s), %llu pattern(s) finalized, %llu alert(s)\n",
               static_cast<unsigned long long>(primary.session.events_fed),
               options.shards_per_tenant, seconds,
               seconds > 0
                   ? static_cast<double>(primary.session.events_fed) / seconds
                   : 0.0,
               static_cast<unsigned long long>(
                   primary.session.stats.patterns_finalized),
               static_cast<unsigned long long>(
                   primary.session.stats.alerts_with_partials));
  if (closed.size() > 1 || reloads_done > 0) {
    for (const TenantReport& tr : closed) {
      std::fprintf(stderr,
                   "  tenant %llu: epoch %llu, %llu event(s) fed, "
                   "%llu shed, %llu alert(s)\n",
                   static_cast<unsigned long long>(tr.tenant),
                   static_cast<unsigned long long>(tr.epoch),
                   static_cast<unsigned long long>(tr.session.events_fed),
                   static_cast<unsigned long long>(tr.session.events_shed),
                   static_cast<unsigned long long>(
                       tr.session.stats.alerts_with_partials));
    }
    SnapshotRegistryStats rs = service.registry_stats();
    std::fprintf(stderr,
                 "  epochs: %llu published, %llu retired, %llu freed, "
                 "%zu live\n",
                 static_cast<unsigned long long>(rs.epochs_published),
                 static_cast<unsigned long long>(rs.epochs_retired),
                 static_cast<unsigned long long>(rs.snapshots_freed),
                 rs.live_epochs);
  }

  std::vector<PartialUpdateReport> reports;
  reports.reserve(primary.session.alerts.size());
  for (const OnlineAlert& alert : primary.session.alerts) {
    // Single-action patterns cannot signal errors; the batch CLI path skips
    // them too, so both modes report the same pattern set.
    if (alert.report.pattern.num_actions() < 2) continue;
    reports.push_back(alert.report);
  }
  int rc = PrintReports(corpus, reports, args);
  if (rc != 0) return rc;
  ReportProvenance provenance = ToReportProvenance(snapshot.provenance);
  return WriteOptionalOutputs(corpus, reports, &provenance, args);
}

int RunServe(const Args& args) {
  Result<LoadedCorpus> corpus =
      LoadCorpus(args, /*require_seed_type=*/false);
  if (!corpus.ok()) return Fail(corpus.status());
  Result<std::string> patterns_path = args.Require("patterns");
  if (!patterns_path.ok()) return Fail(patterns_path.status());
  Result<PatternSnapshot> snapshot =
      LoadSnapshotFile(*patterns_path, *corpus->taxonomy);
  if (!snapshot.ok()) return Fail(snapshot.status());
  return RunOnline(*corpus, *snapshot, args);
}

int RunSynth(const Args& args) {
  Result<std::string> out_dir = args.Require("out-dir");
  if (!out_dir.ok()) return Fail(out_dir.status());
  std::error_code ec;
  std::filesystem::create_directories(*out_dir, ec);
  if (ec) {
    return Fail(Status::Internal("cannot create directory " + *out_dir +
                                 ": " + ec.message()));
  }

  SynthOptions options;
  options.seed_entities =
      static_cast<size_t>(args.GetInt("seeds", 300));
  options.years = static_cast<int>(args.GetInt("years", 2));
  options.rng_seed = static_cast<uint64_t>(args.GetInt("rng-seed", 42));
  std::string domains = args.Get("domains", "soccer");
  options.soccer = domains.find("soccer") != std::string::npos;
  options.cinema = domains.find("cinema") != std::string::npos;
  options.politics = domains.find("politics") != std::string::npos;
  options.software = domains.find("software") != std::string::npos;

  Result<SynthWorld> world = Synthesize(options);
  if (!world.ok()) return Fail(world.status());

  std::string base = *out_dir + "/";
  {
    std::ofstream f(base + "taxonomy.tsv");
    if (!f) return Fail(Status::Internal("cannot write " + base +
                                         "taxonomy.tsv"));
    Status status = WriteTaxonomy(*world->taxonomy, &f);
    if (!status.ok()) return Fail(status);
  }
  {
    std::ofstream f(base + "alignment.tsv");
    if (!f) return Fail(Status::Internal("cannot write " + base +
                                         "alignment.tsv"));
    Status status = WriteAlignment(*world->registry, &f);
    if (!status.ok()) return Fail(status);
  }
  {
    std::ofstream f(base + "dump.xml");
    if (!f) return Fail(Status::Internal("cannot write " + base +
                                         "dump.xml"));
    Status status = WriteDump(*world, 0,
                              static_cast<Timestamp>(options.years) *
                                  kSecondsPerYear,
                              &f);
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %staxonomy.tsv, %salignment.tsv, %sdump.xml\n",
              base.c_str(), base.c_str(), base.c_str());
  std::printf("try: wiclean mine --dump %sdump.xml --taxonomy %staxonomy.tsv "
              "--alignment %salignment.tsv --seed-type soccer_player\n",
              base.c_str(), base.c_str(), base.c_str());
  return 0;
}

/// `wiclean ingest`: runs the XML parse/diff pipeline once with an
/// ActionLogWriter as the sole sink, producing a WCAL action log that
/// mine/detect/pack/serve can replay via --action-log without re-parsing.
int RunIngest(const Args& args) {
  Result<LoadedAlignment> aligned = LoadAlignmentFiles(args);
  if (!aligned.ok()) return Fail(aligned.status());
  Result<IngestArgs> ingest_args = ParseIngestArgs(args);
  if (!ingest_args.ok()) return Fail(ingest_args.status());

  Result<std::string> dump_path = args.Require("dump");
  if (!dump_path.ok()) return Fail(dump_path.status());
  std::ifstream dump_file(*dump_path);
  if (!dump_file) {
    return Fail(Status::NotFound("cannot open dump file " + *dump_path));
  }
  Result<std::string> out_path = args.Require("out");
  if (!out_path.ok()) return Fail(out_path.status());
  std::ofstream out_file(*out_path,
                         std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out_file) {
    return Fail(Status::Internal("cannot write " + *out_path));
  }

  ActionLogWriterOptions writer_options;
  writer_options.target_block_actions =
      static_cast<size_t>(args.GetInt("block-actions", 4096));
  ActionLogWriter writer(&out_file, writer_options);
  if (!writer.status().ok()) return Fail(writer.status());

  XmlPageSource source(&dump_file);
  Result<IngestStats> run =
      RunIngestPipeline(&source, *aligned->registry, &writer,
                        ingest_args->ToIngestOptions());
  if (!run.ok()) return Fail(run.status());
  Status finished = writer.Finish();
  if (!finished.ok()) return Fail(finished);

  IngestStats stats = std::move(run).value();
  stats.log_write_seconds = writer.write_seconds();
  stats.log_blocks = writer.blocks_written();
  std::fprintf(stderr, "ingested (%zu thread%s): %s\n",
               ingest_args->num_threads,
               ingest_args->num_threads == 1 ? "" : "s",
               stats.ToString().c_str());
  std::printf("wrote %llu action(s) in %llu block(s) to %s\n",
              static_cast<unsigned long long>(writer.actions_written()),
              static_cast<unsigned long long>(writer.blocks_written()),
              out_path->c_str());

  std::string stats_json = args.Get("stats-json", "");
  if (!stats_json.empty()) {
    std::ofstream f(stats_json);
    if (!f) return Fail(Status::Internal("cannot write " + stats_json));
    JsonWriter w(&f, /*pretty=*/true);
    w.BeginObject();
    w.Key("action_log");
    w.String(*out_path);
    w.Key("threads");
    w.Int(static_cast<int64_t>(ingest_args->num_threads));
    w.Key("pages");
    w.Int(static_cast<int64_t>(stats.pages));
    w.Key("revisions");
    w.Int(static_cast<int64_t>(stats.revisions));
    w.Key("actions");
    w.Int(static_cast<int64_t>(stats.actions));
    w.Key("unknown_pages");
    w.Int(static_cast<int64_t>(stats.unknown_pages));
    w.Key("unresolved_links");
    w.Int(static_cast<int64_t>(stats.unresolved_links));
    w.Key("pages_skipped");
    w.Int(static_cast<int64_t>(stats.pages_skipped));
    w.Key("revisions_skipped");
    w.Int(static_cast<int64_t>(stats.revisions_skipped));
    w.Key("regions_skipped");
    w.Int(static_cast<int64_t>(stats.regions_skipped));
    w.Key("quarantined");
    w.Int(static_cast<int64_t>(stats.quarantined));
    w.Key("log_blocks");
    w.Int(static_cast<int64_t>(stats.log_blocks));
    w.Key("read_seconds");
    w.Number(stats.read_seconds);
    w.Key("parse_seconds");
    w.Number(stats.parse_seconds);
    w.Key("merge_seconds");
    w.Number(stats.merge_seconds);
    w.Key("log_write_seconds");
    w.Number(stats.log_write_seconds);
    w.EndObject();
    if (!f.good()) return Fail(Status::Internal("write failed: " + stats_json));
    std::printf("stats JSON written to %s\n", stats_json.c_str());
  }
  return 0;
}

int RunMine(const Args& args) {
  Result<LoadedCorpus> corpus = LoadCorpus(args);
  if (!corpus.ok()) return Fail(corpus.status());
  Result<WindowSearchResult> result = RunSearch(*corpus, args);
  if (!result.ok()) return Fail(result.status());

  std::fputs(RenderSearchSummary(*result, *corpus->taxonomy).c_str(), stdout);

  std::string json_path = args.Get("json", "");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) return Fail(Status::Internal("cannot write " + json_path));
    Status status = WriteSearchReportJson(*result, *corpus->taxonomy,
                                          corpus->registry.get(), &f);
    if (!status.ok()) return Fail(status);
    std::printf("JSON report written to %s\n", json_path.c_str());
  }
  return 0;
}

int RunDetect(const Args& args) {
  std::string patterns_path = args.Get("patterns", "");
  std::string online = args.Get("online", "");
  bool use_online = online == "1" || online == "true";
  if (use_online && patterns_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--online requires --patterns SNAPSHOT (run 'wiclean pack' first)"));
  }

  Result<LoadedCorpus> corpus =
      LoadCorpus(args, /*require_seed_type=*/patterns_path.empty());
  if (!corpus.ok()) return Fail(corpus.status());

  // Assemble the pattern set: either the packed snapshot, or mine inline.
  PatternSnapshot snapshot;
  if (!patterns_path.empty()) {
    Result<PatternSnapshot> loaded =
        LoadSnapshotFile(patterns_path, *corpus->taxonomy);
    if (!loaded.ok()) return Fail(loaded.status());
    snapshot = std::move(loaded).value();
  } else {
    Result<WindowSearchResult> result = RunSearch(*corpus, args);
    if (!result.ok()) return Fail(result.status());
    snapshot.provenance.corpus_id = args.Get("dump", "");
    snapshot.provenance.tool = "wiclean detect";
    snapshot.provenance.frequency_threshold =
        args.GetDouble("threshold", 0.7);
    snapshot.provenance.max_abstraction_lift =
        static_cast<int32_t>(args.GetInt("abstraction-lift", 1));
    snapshot.provenance.max_pattern_actions =
        static_cast<uint64_t>(args.GetInt("max-actions", 6));
    snapshot.provenance.mine_relative = true;
    for (const DiscoveredPattern& dp : result->patterns) {
      snapshot.patterns.push_back(
          StoredPattern{dp.mined.pattern, dp.mined.window,
                        dp.mined.frequency, dp.mined.support, dp.threshold});
    }
  }

  if (use_online) return RunOnline(*corpus, snapshot, args);

  PartialDetectorOptions detector_options;
  detector_options.max_abstraction_lift =
      patterns_path.empty()
          ? static_cast<int>(args.GetInt("abstraction-lift", 1))
          : snapshot.provenance.max_abstraction_lift;
  PartialUpdateDetector detector(corpus->registry.get(), &corpus->store,
                                 detector_options);

  std::vector<PartialUpdateReport> reports;
  for (const StoredPattern& sp : snapshot.patterns) {
    if (sp.pattern.num_actions() < 2) continue;
    Result<PartialUpdateReport> report =
        detector.Detect(sp.pattern, sp.window);
    if (!report.ok()) return Fail(report.status());
    reports.push_back(std::move(report).value());
  }

  int rc = PrintReports(*corpus, reports, args);
  if (rc != 0) return rc;
  ReportProvenance provenance = ToReportProvenance(snapshot.provenance);
  return WriteOptionalOutputs(*corpus, reports, &provenance, args);
}

int Usage() {
  std::fprintf(stderr,
               "usage: wiclean <synth|ingest|mine|detect|pack|serve> "
               "[--flag value ...]\n"
               "  synth  --out-dir DIR [--seeds N] [--years N] "
               "[--domains soccer,cinema,politics,software] [--rng-seed S]\n"
               "  ingest --dump F --taxonomy F --alignment F --out F.wcal\n"
               "         [--stats-json F] [--block-actions N] [--threads N] "
               "[ingest flags]\n"
               "         parse/diff the dump once into a WCAL binary action "
               "log; later runs\n"
               "         pass --action-log F.wcal instead of --dump to "
               "replay it (no XML,\n"
               "         no wikitext, identical store at any --threads)\n"
               "  mine   --dump F --taxonomy F --alignment F --seed-type T "
               "[--threshold X] [--json F] [--threads N] [--mine-threads N] "
               "[--profile-workingset 1] [ingest flags]\n"
               "         --mine-threads parallelizes candidate evaluation "
               "(output invariant);\n"
               "         --profile-workingset adds per-kernel touched-bytes "
               "and table\n"
               "         birth/death counters to the report's stats JSON\n"
               "  detect --dump F --taxonomy F --alignment F --seed-type T "
               "[--threshold X] [--csv F] [--json F] [--max-print N] "
               "[--threads N] [ingest flags]\n"
               "         [--patterns SNAPSHOT [--online 1]]  use packed "
               "patterns; --online replays\n"
               "         the revision log through the incremental detector "
               "(same alerts)\n"
               "  pack   --dump F --taxonomy F --alignment F --seed-type T "
               "--out SNAPSHOT\n"
               "         [--threshold X] [--corpus-id ID] [--created-unix S] "
               "mine + write the\n"
               "         versioned, checksummed binary pattern snapshot\n"
               "  serve  --dump F --taxonomy F --alignment F "
               "--patterns SNAPSHOT\n"
               "         [--feed-threads N] [--allowed-skew S] [--json F] "
               "stream the corpus\n"
               "         through the multi-tenant online detector service\n"
               "         [--tenants N]          stagger N sessions along the "
               "feed (default 1)\n"
               "         [--reload F2,F3]       hot-swap snapshot files at "
               "evenly spaced feed\n"
               "             points; open sessions keep their pinned epoch, "
               "corrupt files are\n"
               "             rejected while the old epoch keeps serving\n"
               "         [--max-tenants N]      admission cap (default 64)\n"
               "         [--feed-deadline-ms D] shed load after D ms of "
               "backpressure instead\n"
               "             of blocking (default 0 = block: faithful batch "
               "replay)\n"
               "         [--queue-capacity N]   per-tenant shard queue quota "
               "(default 256)\n"
               "--threads parallelizes dump parse/diff ingestion; output is\n"
               "identical to --threads 1. The ingested: line on stderr "
               "reports per-stage (read/parse/merge) times.\n"
               "mine/detect/pack/serve accept --action-log F.wcal in place "
               "of --dump.\n"
               "ingest flags (fault tolerance):\n"
               "  --on-error strict|skip|quarantine   fault policy "
               "(default strict: fail fast)\n"
               "  --quarantine-dir DIR   where 'quarantine' writes skipped "
               "input (required then)\n"
               "  --max-revision-bytes N --max-revisions-per-page N\n"
               "  --max-actions-per-page N --max-infobox-depth N\n"
               "      resource guards; 0 (default) = unlimited. Breaches "
               "follow --on-error.\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<Args> args = Args::Parse(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());
  std::string_view command = argv[1];
  if (command == "synth") return RunSynth(*args);
  if (command == "ingest") return RunIngest(*args);
  if (command == "mine") return RunMine(*args);
  if (command == "detect") return RunDetect(*args);
  if (command == "pack") return RunPack(*args);
  if (command == "serve") return RunServe(*args);
  return Usage();
}

}  // namespace
}  // namespace wiclean

int main(int argc, char** argv) { return wiclean::Main(argc, argv); }
