#ifndef WICLEAN_TOOLS_LINT_LINT_RULES_H_
#define WICLEAN_TOOLS_LINT_LINT_RULES_H_

#include <string>
#include <string_view>
#include <vector>

namespace wiclean {
namespace lint {

/// The repo lint tool: enforces WiClean source conventions the compiler
/// cannot (see tools/lint/README note in DESIGN.md §"Static analysis &
/// contracts"). Runs as the `repo_lint` ctest and as a CI job.
///
/// Rules (rule names are what `// lint:allow(<rule>)` suppresses):
///   include-guard     .h guard must be WICLEAN_<PATH>_H_ (path relative to
///                     the repo root, with a leading "src/" dropped)
///   banned-function   rand / sprintf / strtok — unseeded randomness and
///                     unbounded/stateful C string APIs (use Rng,
///                     snprintf/std::string, SplitString)
///   raw-new           `new` outside tests: ownership lives in containers,
///                     unique_ptr, or the registries — intentional leaks
///                     (static-lifetime singletons) carry the suppression
///   todo-format       TODO must be TODO(owner): — lint:allow(todo-format)
///                     so every deferral has an owner
///   unchecked-value   .value() on a Result in non-test code with no visible
///                     ok() check in the preceding lines (use
///                     WICLEAN_ASSIGN_OR_RETURN / WICLEAN_CHECK_OK, or keep
///                     the check adjacent)
///   raw-memcpy        memcpy() calls — blitting wire bytes into structs
///                     skips bounds and validity checks, so binary
///                     deserialization is confined to the bounds-checked
///                     readers in src/serve/pattern_store.cc (exempt);
///                     everywhere else use those helpers or field-by-field
///                     byte composition
///   dead-suppression  a lint:allow comment on a line that no longer
///                     triggers the named rule (including typo'd rule
///                     names): the code it excused was rewritten, so the
///                     stale suppression must be removed. Suppressions only
///                     count inside // comments, never in string literals,
///                     and this rule is itself not suppressible.

/// One rule violation at a file:line.
struct LintFinding {
  std::string path;     // as given to LintFile
  size_t line = 0;      // 1-based
  std::string rule;     // rule name, e.g. "banned-function"
  std::string message;  // human-readable description

  std::string ToString() const;
};

/// Lints one file's content. `path` is the repo-relative path (used for the
/// include-guard rule and in findings); `is_test_file` relaxes the rules
/// that only apply to production code (raw-new, unchecked-value).
std::vector<LintFinding> LintFile(const std::string& path,
                                  std::string_view content,
                                  bool is_test_file);

/// True for paths the test-only rule relaxations apply to: anything under
/// tests/, *_test.cc / *_test.cpp, and lint fixtures under testdata/.
bool IsTestPath(std::string_view path);

/// The include guard the convention demands for `path` (a .h repo-relative
/// path): "src/common/status.h" -> "WICLEAN_COMMON_STATUS_H_",
/// "tools/lint/lint_rules.h" -> "WICLEAN_TOOLS_LINT_LINT_RULES_H_".
std::string ExpectedIncludeGuard(std::string_view path);

/// Strips // and /* */ comments and the contents of string/char literals
/// (replaced by spaces), so token rules do not fire on prose. `in_block` is
/// carried across lines of one file.
std::string StripCommentsAndStrings(std::string_view line, bool* in_block);

}  // namespace lint
}  // namespace wiclean

#endif  // WICLEAN_TOOLS_LINT_LINT_RULES_H_
