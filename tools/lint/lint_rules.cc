#include "lint_rules.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <utility>

namespace wiclean {
namespace lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `token` occurs in `text` as a whole word (no identifier char on
/// either side). Returns the position via *pos when found.
bool FindWord(std::string_view text, std::string_view token, size_t* pos) {
  size_t from = 0;
  while (true) {
    size_t hit = text.find(token, from);
    if (hit == std::string_view::npos) return false;
    bool left_ok = hit == 0 || !IsIdentChar(text[hit - 1]);
    size_t end = hit + token.size();
    bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      if (pos != nullptr) *pos = hit;
      return true;
    }
    from = hit + 1;
  }
}

/// Position of the `//` that starts the line comment, skipping string and
/// character literals, or npos when the line has no line comment.
size_t LineCommentStart(std::string_view raw) {
  size_t i = 0;
  while (i < raw.size()) {
    char c = raw[i];
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < raw.size()) {
        if (raw[i] == '\\') {
          i += 2;
          continue;
        }
        if (raw[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') return i;
    ++i;
  }
  return std::string_view::npos;
}

/// Real rule names are kebab-case; anything else (e.g. the `<rule>`
/// placeholder in documentation prose) is not a suppression.
bool IsRuleShaped(std::string_view rule) {
  if (rule.empty()) return false;
  for (char c : rule) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-')) {
      return false;
    }
  }
  return true;
}

/// All rule names annotated `lint:allow(<rule>)` in the line's `//` comment.
/// Occurrences inside string literals do not count: a suppression is a
/// comment addressed to the linter, not data.
std::vector<std::string> SuppressionsOn(std::string_view raw_line) {
  std::vector<std::string> rules;
  size_t comment = LineCommentStart(raw_line);
  if (comment == std::string_view::npos) return rules;
  std::string_view text = raw_line.substr(comment);
  size_t hit = text.find("lint:allow(");
  while (hit != std::string_view::npos) {
    std::string_view rest = text.substr(hit + 11);
    size_t close = rest.find(')');
    if (close != std::string_view::npos && IsRuleShaped(rest.substr(0, close))) {
      rules.emplace_back(rest.substr(0, close));
    }
    hit = text.find("lint:allow(", hit + 1);
  }
  return rules;
}

/// A banned token and why it is banned.
struct BannedFunction {
  std::string_view name;
  std::string_view reason;
};

constexpr BannedFunction kBannedFunctions[] = {
    {"rand", "unseeded global PRNG; use wiclean::Rng (common/rng.h)"},
    {"srand", "unseeded global PRNG; use wiclean::Rng (common/rng.h)"},
    {"sprintf", "unbounded buffer write; use snprintf or std::string"},
    {"strtok", "stateful and not thread-safe; use SplitString"},
};

}  // namespace

std::string LintFinding::ToString() const {
  return path + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

bool IsTestPath(std::string_view path) {
  auto ends_with = [&](std::string_view s) {
    return path.size() >= s.size() &&
           path.substr(path.size() - s.size()) == s;
  };
  return path.substr(0, 6) == "tests/" ||
         path.find("/tests/") != std::string_view::npos ||
         path.find("testdata") != std::string_view::npos ||
         ends_with("_test.cc") || ends_with("_test.cpp");
}

std::string ExpectedIncludeGuard(std::string_view path) {
  if (path.substr(0, 4) == "src/") path.remove_prefix(4);
  std::string guard = "WICLEAN_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

std::string StripCommentsAndStrings(std::string_view line, bool* in_block) {
  std::string out;
  out.reserve(line.size());
  size_t i = 0;
  while (i < line.size()) {
    if (*in_block) {
      size_t close = line.find("*/", i);
      if (close == std::string_view::npos) return out;
      *in_block = false;
      i = close + 2;
      continue;
    }
    char c = line[i];
    if (c == '/' && i + 1 < line.size()) {
      if (line[i + 1] == '/') return out;  // line comment
      if (line[i + 1] == '*') {
        *in_block = true;
        i += 2;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        ++i;
      }
      if (i < line.size()) {
        out += quote;
        ++i;  // past the closing quote
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::vector<LintFinding> LintFile(const std::string& path,
                                  std::string_view content,
                                  bool is_test_file) {
  // Candidates are collected before suppressions are applied, so a stale
  // `lint:allow(<rule>)` — one whose line no longer triggers <rule> — can be
  // detected instead of silently rotting.
  std::vector<LintFinding> candidates;
  auto report = [&](size_t line, std::string rule, std::string message) {
    candidates.push_back(LintFinding{path, line, std::move(rule),
                                     std::move(message)});
  };

  bool is_header = path.size() >= 2 &&
                   path.substr(path.size() - 2) == ".h";

  // Split into lines (keeping 1-based numbering).
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }

  // --- include-guard ------------------------------------------------------
  if (is_header) {
    std::string expected = ExpectedIncludeGuard(path);
    std::string ifndef_line;
    size_t ifndef_number = 0;
    bool in_block = false;
    for (size_t n = 0; n < lines.size(); ++n) {
      std::string stripped = StripCommentsAndStrings(lines[n], &in_block);
      std::string_view sv(stripped);
      size_t hash = sv.find_first_not_of(" \t");
      if (hash == std::string_view::npos) continue;
      sv.remove_prefix(hash);
      if (sv.substr(0, 7) == "#ifndef") {
        ifndef_line = std::string(sv);
        ifndef_number = n + 1;
      }
      if (!sv.empty() && sv[0] != '#' && ifndef_line.empty()) break;
      if (!ifndef_line.empty()) break;
    }
    if (ifndef_line.empty()) {
      report(1, "include-guard",
             "header has no include guard; expected #ifndef " + expected);
    } else if (!FindWord(ifndef_line, expected, nullptr)) {
      report(ifndef_number, "include-guard",
             "include guard does not match the path; expected " + expected);
    } else {
      // The matching #define must follow on some later line.
      bool defined = false;
      for (const auto& l : lines) {
        std::string_view sv(l);
        if (sv.find("#define") != std::string_view::npos &&
            FindWord(sv, expected, nullptr)) {
          defined = true;
          break;
        }
      }
      if (!defined) {
        report(ifndef_number, "include-guard",
               "include guard " + expected + " is never #defined");
      }
    }
  }

  // --- per-line token rules ----------------------------------------------
  // The two binary-wire codecs (the pattern snapshot and the WCAL action
  // log) are the only modules allowed to touch raw wire bytes; everything
  // else must go through their bounds-checked helpers.
  auto path_ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           std::string_view(path).substr(path.size() - suffix.size()) ==
               suffix;
  };
  const bool memcpy_exempt = path_ends_with("serve/pattern_store.cc") ||
                             path_ends_with("log/action_log_codec.cc");

  // Sliding window of recent stripped lines for the unchecked-value rule.
  constexpr size_t kValueCheckWindow = 6;  // current line + 5 above
  std::deque<std::string> recent;
  bool in_block = false;
  for (size_t n = 0; n < lines.size(); ++n) {
    std::string_view raw = lines[n];
    std::string stripped = StripCommentsAndStrings(raw, &in_block);
    size_t line_number = n + 1;

    // banned-function: applies everywhere, including tests.
    for (const BannedFunction& banned : kBannedFunctions) {
      size_t pos = 0;
      if (FindWord(stripped, banned.name, &pos) &&
          stripped.size() > pos + banned.name.size() &&
          stripped[pos + banned.name.size()] == '(') {
        report(line_number, "banned-function",
               std::string(banned.name) + "() is banned: " +
                   std::string(banned.reason));
      }
    }

    // raw-memcpy: applies everywhere (tests included) except the designated
    // deserialization module — memcpy-into-struct parsing must not spread.
    if (!memcpy_exempt) {
      size_t pos = 0;
      if (FindWord(stripped, "memcpy", &pos) &&
          stripped.size() > pos + 6 && stripped[pos + 6] == '(') {
        report(line_number, "raw-memcpy",
               "memcpy() is banned outside serve/pattern_store.cc and "
               "log/action_log_codec.cc: deserialize through the "
               "bounds-checked reader helpers, not byte blits into structs");
      }
    }

    // todo-format, checked on the raw line since TODOs live in comments.
    // (Mentions of the token in this block suppress themselves.)
    size_t todo = 0;
    if (FindWord(raw, "TODO", &todo)) {  // lint:allow(todo-format)
      std::string_view rest = std::string_view(raw).substr(todo + 4);
      bool well_formed = false;
      if (!rest.empty() && rest[0] == '(') {
        size_t close = rest.find(')');
        well_formed = close != std::string_view::npos && close > 1 &&
                      close + 1 < rest.size() && rest[close + 1] == ':';
      }
      if (!well_formed) {
        report(
            line_number, "todo-format",
            "TODO must name an owner: TODO(name): ...");  // lint:allow(todo-format)
      }
    }

    // raw-new: production code only.
    if (!is_test_file) {
      size_t pos = 0;
      if (FindWord(stripped, "new", &pos)) {
        report(line_number, "raw-new",
               "raw new is banned outside tests; use containers, "
               "make_unique, or a registry (intentional static-lifetime "
               "leaks: // lint:allow(raw-new))");
      }
    }

    // unchecked-value: production code only; .value() needs a visible ok()
    // check nearby or one of the checked macros.
    if (!is_test_file) {
      size_t pos = stripped.find(".value()");
      if (pos != std::string::npos) {
        bool checked = false;
        auto window_has = [&](std::string_view needle) {
          if (stripped.find(needle) != std::string::npos) return true;
          for (const std::string& prev : recent) {
            if (prev.find(needle) != std::string::npos) return true;
          }
          return false;
        };
        checked = window_has("ok()") || window_has("WICLEAN_ASSIGN_OR_RETURN") ||
                  window_has("WICLEAN_CHECK_OK") || window_has("ASSERT_") ||
                  window_has("EXPECT_");
        if (!checked) {
          report(line_number, "unchecked-value",
                 ".value() without a visible ok() check in the preceding " +
                     std::to_string(kValueCheckWindow - 1) +
                     " lines; use WICLEAN_ASSIGN_OR_RETURN / "
                     "WICLEAN_CHECK_OK or keep the check adjacent");
        }
      }
    }

    recent.push_back(std::move(stripped));
    if (recent.size() >= kValueCheckWindow) recent.pop_front();
  }

  // --- suppression filtering + dead-suppression ---------------------------
  // A suppression silences same-line findings of its rule. One that matches
  // nothing is stale — the code it excused has been rewritten — and is
  // itself a finding, so suppressions cannot outlive their reason.
  // (dead-suppression is deliberately not suppressible.)
  std::vector<std::pair<size_t, std::string>> suppressions;
  for (size_t n = 0; n < lines.size(); ++n) {
    for (std::string& rule : SuppressionsOn(lines[n])) {
      suppressions.emplace_back(n + 1, std::move(rule));
    }
  }

  std::vector<LintFinding> findings;
  for (LintFinding& f : candidates) {
    bool silenced = false;
    for (const auto& [line, rule] : suppressions) {
      if (line == f.line && rule == f.rule) {
        silenced = true;
        break;
      }
    }
    if (!silenced) findings.push_back(std::move(f));
  }
  for (const auto& [line, rule] : suppressions) {
    bool live = false;
    for (const LintFinding& f : candidates) {
      if (f.line == line && f.rule == rule) {
        live = true;
        break;
      }
    }
    if (!live) {
      findings.push_back(LintFinding{
          path, line, "dead-suppression",
          "lint:allow(" + rule + ") matches no " + rule +
              " finding on this line; remove the stale suppression"});
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return a.line < b.line;
                   });

  return findings;
}

}  // namespace lint
}  // namespace wiclean
