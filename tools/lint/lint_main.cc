// wiclean_lint: repo convention checker. Usage:
//
//   wiclean_lint <repo-root>
//
// Walks src/, tools/, tests/, bench/, examples/ for C++ sources, applies the
// rules in lint_rules.h, prints one `path:line: [rule] message` per finding,
// and exits non-zero if anything fired. Registered as the `repo_lint` ctest
// and as the CI lint job, so a convention violation fails the build the same
// way a compiler warning-as-error does.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace wiclean {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Directories whose contents are linted, relative to the repo root.
constexpr const char* kRoots[] = {"src", "tools", "tests", "bench",
                                  "examples"};

/// Skipped anywhere in the tree: build output and lint fixtures (the
/// fixtures deliberately violate the rules; lint_test.cc covers them).
bool SkipDirectory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0;
}

int Run(const fs::path& repo_root) {
  std::vector<LintFinding> findings;
  size_t files_scanned = 0;

  for (const char* root : kRoots) {
    fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    auto it = fs::recursive_directory_iterator(dir);
    for (auto end = fs::end(it); it != end; ++it) {
      if (it->is_directory()) {
        if (SkipDirectory(it->path())) it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !HasLintableExtension(it->path())) {
        continue;
      }
      const std::string rel =
          fs::relative(it->path(), repo_root).generic_string();
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "wiclean_lint: cannot read %s\n", rel.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string content = buffer.str();
      ++files_scanned;
      std::vector<LintFinding> file_findings =
          LintFile(rel, content, IsTestPath(rel));
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const LintFinding& f : findings) {
    std::printf("%s\n", f.ToString().c_str());
  }
  std::fprintf(stderr, "wiclean_lint: %zu file(s), %zu finding(s)\n",
               files_scanned, findings.size());
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace lint
}  // namespace wiclean

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: wiclean_lint <repo-root>\n");
    return 2;
  }
  return wiclean::lint::Run(argv[1]);
}
