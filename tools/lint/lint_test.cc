#include "lint_rules.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace wiclean {
namespace lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<LintFinding>& findings) {
  std::vector<std::string> rules;
  for (const LintFinding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool HasRule(const std::vector<LintFinding>& findings,
             std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const LintFinding& f) { return f.rule == rule; });
}

// ---------- helpers ----------

TEST(LintHelpersTest, ExpectedIncludeGuardDropsLeadingSrc) {
  EXPECT_EQ(ExpectedIncludeGuard("src/common/status.h"),
            "WICLEAN_COMMON_STATUS_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/lint/lint_rules.h"),
            "WICLEAN_TOOLS_LINT_LINT_RULES_H_");
  EXPECT_EQ(ExpectedIncludeGuard("bench/bench_common.h"),
            "WICLEAN_BENCH_BENCH_COMMON_H_");
}

TEST(LintHelpersTest, IsTestPath) {
  EXPECT_TRUE(IsTestPath("tests/common_test.cc"));
  EXPECT_TRUE(IsTestPath("src/foo/bar_test.cc"));
  EXPECT_TRUE(IsTestPath("tools/lint/testdata/bad_raw_new.cc"));
  EXPECT_FALSE(IsTestPath("src/common/status.h"));
  EXPECT_FALSE(IsTestPath("tools/wiclean_cli.cc"));
}

TEST(LintHelpersTest, StripCommentsAndStrings) {
  bool in_block = false;
  EXPECT_EQ(StripCommentsAndStrings("int x;  // new things", &in_block),
            "int x;  ");
  EXPECT_FALSE(in_block);
  EXPECT_EQ(StripCommentsAndStrings("f(\"sprintf inside\");", &in_block),
            "f(\"\");");
  EXPECT_EQ(StripCommentsAndStrings("a /* new */ b", &in_block), "a  b");
  EXPECT_FALSE(in_block);
  // Block comment spanning lines.
  EXPECT_EQ(StripCommentsAndStrings("x /* start", &in_block), "x ");
  EXPECT_TRUE(in_block);
  EXPECT_EQ(StripCommentsAndStrings("still new here */ y", &in_block), " y");
  EXPECT_FALSE(in_block);
}

// ---------- rules, inline content ----------

TEST(LintFileTest, CleanFilePasses) {
  const std::string content =
      "#ifndef WICLEAN_COMMON_DEMO_H_\n"
      "#define WICLEAN_COMMON_DEMO_H_\n"
      "int Add(int a, int b);\n"
      "#endif  // WICLEAN_COMMON_DEMO_H_\n";
  EXPECT_TRUE(LintFile("src/common/demo.h", content, false).empty());
}

TEST(LintFileTest, WrongIncludeGuardFlagged) {
  const std::string content =
      "#ifndef DEMO_H\n"
      "#define DEMO_H\n"
      "#endif\n";
  std::vector<LintFinding> f = LintFile("src/common/demo.h", content, false);
  ASSERT_TRUE(HasRule(f, "include-guard")) << f.size();
}

TEST(LintFileTest, MissingIncludeGuardFlagged) {
  std::vector<LintFinding> f =
      LintFile("src/common/demo.h", "int x;\n", false);
  EXPECT_TRUE(HasRule(f, "include-guard"));
}

TEST(LintFileTest, GuardWithoutDefineFlagged) {
  const std::string content =
      "#ifndef WICLEAN_COMMON_DEMO_H_\n"
      "int x;\n"
      "#endif\n";
  std::vector<LintFinding> f = LintFile("src/common/demo.h", content, false);
  EXPECT_TRUE(HasRule(f, "include-guard"));
}

TEST(LintFileTest, BannedFunctionsFlaggedEvenInTests) {
  const std::string content = "int x = rand();\nsprintf(buf, \"%d\", x);\n";
  std::vector<LintFinding> prod = LintFile("src/a.cc", content, false);
  std::vector<LintFinding> test = LintFile("tests/a_test.cc", content, true);
  EXPECT_EQ(RulesOf(prod),
            (std::vector<std::string>{"banned-function", "banned-function"}));
  EXPECT_EQ(RulesOf(test), RulesOf(prod));
}

TEST(LintFileTest, BannedFunctionNeedsCallSyntax) {
  // Identifiers that merely contain the name, or the name without a call,
  // do not fire.
  const std::string content =
      "int my_rand_count = 0;\n"
      "void Brand(int sprintf_like);\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, BannedFunctionInCommentOrStringIgnored) {
  const std::string content =
      "// rand() would be wrong here\n"
      "const char* kMsg = \"do not call sprintf()\";\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, RawNewFlaggedInProductionOnly) {
  const std::string content = "auto* p = new int(3);\n";
  EXPECT_TRUE(HasRule(LintFile("src/a.cc", content, false), "raw-new"));
  EXPECT_TRUE(LintFile("tests/a_test.cc", content, true).empty());
}

TEST(LintFileTest, RawNewSuppressible) {
  const std::string content =
      "static Mutex* mu = new Mutex;  // lint:allow(raw-new)\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, TodoFormat) {
  std::vector<LintFinding> f = LintFile(
      "src/a.cc", "// TODO: fix this\n", false);  // lint:allow(todo-format)
  EXPECT_TRUE(HasRule(f, "todo-format"));
  EXPECT_TRUE(
      LintFile("src/a.cc", "// TODO(miner): fix this\n", false).empty());
}

TEST(LintFileTest, UncheckedValueFlagged) {
  const std::string content =
      "Result<int> r = Parse(s);\n"
      "Use(r.value());\n";
  EXPECT_TRUE(HasRule(LintFile("src/a.cc", content, false),
                      "unchecked-value"));
}

TEST(LintFileTest, ValueWithNearbyOkCheckPasses) {
  const std::string content =
      "Result<int> r = Parse(s);\n"
      "if (!r.ok()) return r.status();\n"
      "Use(r.value());\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, ValueCheckWindowIsBounded) {
  // ok() check too far above the .value() no longer counts.
  std::string content = "if (!r.ok()) return r.status();\n";
  for (int i = 0; i < 8; ++i) content += "Unrelated(" + std::to_string(i) + ");\n";
  content += "Use(r.value());\n";
  EXPECT_TRUE(HasRule(LintFile("src/a.cc", content, false),
                      "unchecked-value"));
}

TEST(LintFileTest, ValueInTestsUnrestricted) {
  EXPECT_TRUE(
      LintFile("tests/a_test.cc", "Use(r.value());\n", true).empty());
}

TEST(LintFileTest, RawMemcpyFlaggedEverywhereButTheCodecs) {
  const std::string content = "std::memcpy(&header, bytes, sizeof(header));\n";
  EXPECT_TRUE(HasRule(LintFile("src/a.cc", content, false), "raw-memcpy"));
  // Tests are not exempt: parsing via byte blits is wrong there too.
  EXPECT_TRUE(
      HasRule(LintFile("tests/a_test.cc", content, true), "raw-memcpy"));
  // The two designated wire codecs are exempt.
  EXPECT_TRUE(
      LintFile("src/serve/pattern_store.cc", content, false).empty());
  EXPECT_TRUE(
      LintFile("src/log/action_log_codec.cc", content, false).empty());
  // The exemption keys on the full module path, not the basename.
  EXPECT_TRUE(HasRule(LintFile("src/other/action_log_codec2.cc", content,
                               false),
                      "raw-memcpy"));
}

TEST(LintFileTest, RawMemcpyNeedsCallSyntax) {
  const std::string content =
      "// memcpy would be wrong here\n"
      "int memcpy_count = 0;\n"
      "void LikeMemcpy(int memcpy_arg);\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, RawMemcpySuppressible) {
  const std::string content =
      "std::memcpy(dst, src, n);  // lint:allow(raw-memcpy)\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, SuppressionIsPerRule) {
  // A raw-new suppression does not silence a banned function on the line.
  const std::string content =
      "auto* p = new int(rand());  // lint:allow(raw-new)\n";
  std::vector<LintFinding> f = LintFile("src/a.cc", content, false);
  EXPECT_FALSE(HasRule(f, "raw-new"));
  EXPECT_TRUE(HasRule(f, "banned-function"));
}

TEST(LintFileTest, DeadSuppressionFlagged) {
  // The line no longer contains a raw new, so the allow is stale.
  const std::string content = "int x = 0;  // lint:allow(raw-new)\n";
  std::vector<LintFinding> f = LintFile("src/a.cc", content, false);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "dead-suppression");
  EXPECT_EQ(f[0].line, 1u);
}

TEST(LintFileTest, LiveSuppressionIsNotDead) {
  const std::string content =
      "static Mutex* mu = new Mutex;  // lint:allow(raw-new)\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/a.cc", content, false), "dead-suppression"));
}

TEST(LintFileTest, DeadSuppressionCatchesUnknownRuleNames) {
  // A typo'd rule name can never match a finding, so it is always dead.
  const std::string content = "int x = rand();  // lint:allow(band-function)\n";
  std::vector<LintFinding> f = LintFile("src/a.cc", content, false);
  EXPECT_TRUE(HasRule(f, "banned-function"));  // typo did not silence it
  EXPECT_TRUE(HasRule(f, "dead-suppression"));
}

TEST(LintFileTest, SuppressionOnlyCountsInComments) {
  // The annotation inside a string literal is data, not a suppression, so
  // it is neither honored nor reported as dead.
  const std::string content =
      "const char* kHelp = \"silence with // lint:allow(raw-new)\";\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, PlaceholderProseIsNotASuppression) {
  // Documentation writing lint:allow(<rule>) with a placeholder must not be
  // parsed as a (necessarily dead) suppression of a rule named "<rule>".
  const std::string content = "// disable via lint:allow(<rule>) on the line\n";
  EXPECT_TRUE(LintFile("src/a.cc", content, false).empty());
}

TEST(LintFileTest, DeadSuppressionAppliesInTestFilesToo) {
  // raw-new never fires in test files, so allowing it there is always dead.
  const std::string content = "auto* p = new int(3);  // lint:allow(raw-new)\n";
  EXPECT_TRUE(HasRule(LintFile("tests/a_test.cc", content, true),
                      "dead-suppression"));
}

TEST(LintFileTest, FindingToStringFormat) {
  std::vector<LintFinding> f =
      LintFile("src/a.cc", "int x = rand();\n", false);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 1u);
  EXPECT_EQ(f[0].ToString().substr(0, 28), "src/a.cc:1: [banned-function");
}

// ---------- fixtures on disk ----------
// WICLEAN_LINT_TESTDATA is the absolute path to tools/lint/testdata,
// injected by CMake. Each bad_* fixture must trip exactly its named rule;
// good.h must be clean.

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(WICLEAN_LINT_TESTDATA) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(LintFixtureTest, GoodHeaderIsClean) {
  std::vector<LintFinding> f = LintFile(
      "tools/lint/fixtures/good.h", ReadFixture("good.h"), false);
  EXPECT_TRUE(f.empty()) << (f.empty() ? std::string() : f[0].ToString());
}

TEST(LintFixtureTest, BadFixturesEachTripTheirRule) {
  const struct {
    const char* file;
    const char* rule;
  } kCases[] = {
      {"bad_guard.h", "include-guard"},
      {"bad_banned.cc", "banned-function"},
      {"bad_raw_new.cc", "raw-new"},
      {"bad_todo.cc", "todo-format"},
      {"bad_unchecked_value.cc", "unchecked-value"},
      {"bad_memcpy.cc", "raw-memcpy"},
      {"bad_dead_suppression.cc", "dead-suppression"},
  };
  for (const auto& c : kCases) {
    std::vector<LintFinding> f =
        LintFile(std::string("tools/lint/fixtures/") + c.file,
                 ReadFixture(c.file), false);
    ASSERT_FALSE(f.empty()) << c.file;
    EXPECT_TRUE(HasRule(f, c.rule)) << c.file << " should trip " << c.rule;
  }
}

TEST(LintFixtureTest, MemcpyFixtureExemptOnlyUnderCodecPaths) {
  const std::string content = ReadFixture("exempt_memcpy_codec.cc");
  // The same bytes are clean under the codec paths...
  EXPECT_TRUE(
      LintFile("src/serve/pattern_store.cc", content, false).empty());
  EXPECT_TRUE(
      LintFile("src/log/action_log_codec.cc", content, false).empty());
  // ...and a finding anywhere else.
  EXPECT_TRUE(HasRule(LintFile("src/log/replay.cc", content, false),
                      "raw-memcpy"));
}

}  // namespace
}  // namespace lint
}  // namespace wiclean
