// Lint fixture: calls a banned function.
#include <cstdlib>

int Roll() { return rand() % 6; }
