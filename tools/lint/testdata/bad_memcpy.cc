// Lint fixture: memcpy-into-struct deserialization outside the snapshot
// reader.
#include <cstring>

struct Header {
  unsigned magic;
  unsigned version;
};

Header ParseHeader(const char* wire) {
  Header h;
  std::memcpy(&h, wire, sizeof(h));
  return h;
}
