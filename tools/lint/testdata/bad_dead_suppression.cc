// Lint fixture: suppressions left behind after the code they silenced was
// rewritten. Neither line still triggers the named rule, so both
// lint:allow comments are stale and dead-suppression must fire — including
// the second one, where the rule name is a typo that never existed.
#include <memory>

void MakeWidget() {
  auto p = std::make_unique<int>(3);  // lint:allow(raw-new)
  (void)p;
}

void CopyNothing() {
  int dst = 0;  // lint:allow(raw-memcpyy)
  (void)dst;
}
