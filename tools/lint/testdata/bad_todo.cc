// Lint fixture: ownerless TODO.
// TODO: someone should fix this someday.
int Pending() { return 0; }
