// Lint fixture: a byte blit that is legal only because the file is linted
// under one of the two designated wire-codec paths (serve/pattern_store.cc,
// log/action_log_codec.cc). Linted under any other path it must trip
// raw-memcpy.
#include <cstring>

void CopyColumn(unsigned char* dst, const char* src, unsigned long n) {
  std::memcpy(dst, src, n);
}
