// Lint fixture: .value() with no visible ok() check nearby.
#include "common/result.h"

int Crashy(const wiclean::Result<int>& r) {
  return r.value();
}
