// Lint fixture: a fully conventional header. Linted as if it lived at
// tools/lint/fixtures/good.h, so the guard below matches that path.
#ifndef WICLEAN_TOOLS_LINT_FIXTURES_GOOD_H_
#define WICLEAN_TOOLS_LINT_FIXTURES_GOOD_H_

#include <memory>
#include <string>

namespace wiclean {

// TODO(lint): fixtures stay minimal on purpose.
inline std::unique_ptr<std::string> MakeName() {
  return std::make_unique<std::string>("good");
}

}  // namespace wiclean

#endif  // WICLEAN_TOOLS_LINT_FIXTURES_GOOD_H_
