// Lint fixture: include guard does not follow the WICLEAN_<PATH>_H_
// convention for tools/lint/fixtures/bad_guard.h.
#ifndef BAD_GUARD_H
#define BAD_GUARD_H

int Unused();

#endif  // BAD_GUARD_H
