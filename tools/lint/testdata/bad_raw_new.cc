// Lint fixture: raw new in production code without a suppression.
int* Leak() { return new int(42); }
