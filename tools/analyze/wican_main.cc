// wican: whole-repo cross-translation-unit static analyzer. Usage:
//
//   wican <repo-root>          run all passes, print findings, exit 1 if any
//   wican --dump <repo-root>   print the merged index summary (determinism
//                              oracle; see index.h DebugSummary)
//
// Walks src/, tools/, tests/, bench/, examples/ for C++ sources, builds the
// merged RepoIndex, runs the taint / lock-order / lifetime passes (passes.h),
// prints one `path:line: [rule] message` per unsuppressed finding, and exits
// non-zero if anything fired. Registered as the `wican_repo` ctest next to
// `repo_lint`, so a cross-file dataflow violation fails the build.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "index.h"
#include "passes.h"

namespace wiclean {
namespace analyze {
namespace {

namespace fs = std::filesystem;

bool HasAnalyzableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

/// Directories whose contents are analyzed, relative to the repo root.
constexpr const char* kRoots[] = {"src", "tools", "tests", "bench",
                                  "examples"};

/// Skipped anywhere in the tree: build output and analyzer/lint fixtures
/// (the fixtures deliberately contain defects; analyze_test.cc covers them).
bool SkipDirectory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0;
}

int Run(const fs::path& repo_root, bool dump) {
  std::vector<FileIndex> files;
  for (const char* root : kRoots) {
    fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    auto it = fs::recursive_directory_iterator(dir);
    for (auto end = fs::end(it); it != end; ++it) {
      if (it->is_directory()) {
        if (SkipDirectory(it->path())) it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !HasAnalyzableExtension(it->path())) {
        continue;
      }
      const std::string rel =
          fs::relative(it->path(), repo_root).generic_string();
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "wican: cannot read %s\n", rel.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      files.push_back(IndexFile(rel, buffer.str()));
    }
  }
  const size_t file_count = files.size();
  RepoIndex index = BuildRepoIndex(std::move(files));

  if (dump) {
    std::printf("%s", DebugSummary(index).c_str());
    return 0;
  }

  std::vector<AnalyzeFinding> findings = RunAllPasses(index);
  for (const AnalyzeFinding& f : findings) {
    std::printf("%s\n", f.ToString().c_str());
  }
  std::fprintf(stderr, "wican: %zu file(s), %zu finding(s)\n", file_count,
               findings.size());
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace analyze
}  // namespace wiclean

int main(int argc, char** argv) {
  bool dump = false;
  const char* root = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (root == nullptr) {
      root = argv[i];
    } else {
      root = nullptr;
      break;
    }
  }
  if (root == nullptr) {
    std::fprintf(stderr, "usage: wican [--dump] <repo-root>\n");
    return 2;
  }
  return wiclean::analyze::Run(root, dump);
}
