#ifndef WICLEAN_TOOLS_ANALYZE_INDEX_H_
#define WICLEAN_TOOLS_ANALYZE_INDEX_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tokenizer.h"

namespace wiclean {
namespace analyze {

/// Declaration/scope indexer and per-function summary extractor — the shared
/// front end under the three wican passes (passes.h). One FileIndex is built
/// per source file; BuildRepoIndex merges them into the cross-translation-
/// unit view: a function annotated WC_UNTRUSTED in a header taints calls in
/// every .cc that names it, a WC_GUARDED_BY field declared in one file is
/// checked at access sites in all files, and lock-acquisition summaries
/// compose across files into one lock-order graph.
///
/// The index is deterministic in file-set order: BuildRepoIndex sorts files
/// by path and every merged table is an ordered map, so shuffling the input
/// ordering produces a byte-identical DebugSummary (covered by
/// analyze_test.cc).

/// One function parameter.
struct ParamInfo {
  std::string type_head;  // last depth-0 identifier of the type, e.g.
                          // "string_view" for `std::string_view bytes`
  std::string name;       // "" when unnamed
  bool untrusted = false; // the parameter carries WC_UNTRUSTED
};

/// Summary of one function declaration or definition.
struct FunctionInfo {
  std::string file;
  size_t line = 0;
  std::string class_name;      // innermost enclosing class ("" for free)
  std::string name;            // last component, e.g. "DecodeBlock"
  std::string qualified_name;  // scopes + name joined with "::"
  std::string return_type;     // raw token text, "" for ctors/dtors
  std::vector<ParamInfo> params;
  bool untrusted = false;      // WC_UNTRUSTED: outputs are attacker bytes
  bool borrowed_view = false;  // WC_BORROWED_VIEW: outputs alias the receiver
  bool no_analysis = false;    // WC_NO_THREAD_SAFETY_ANALYSIS
  std::vector<std::string> requires_locks;  // WC_REQUIRES(...) arguments
  bool is_definition = false;
  // Token span of the body in FileIndex::tokens, excluding the outer braces:
  // [body_begin, body_end). Zero-length for declarations.
  size_t body_begin = 0;
  size_t body_end = 0;
};

/// One class data member (every member is recorded, annotated or not — the
/// passes resolve `obj.field` chains through these).
struct FieldInfo {
  std::string class_name;
  std::string name;
  std::string type_head;   // e.g. "BoundedQueue" for `BoundedQueue<T> q_`
  std::string guarded_by;  // mutex expression from WC_GUARDED_BY, "" if none
  bool untrusted = false;  // WC_UNTRUSTED: holds raw artifact bytes
  std::string file;
  size_t line = 0;
};

/// Per-line wican suppression: `// wican:allow(<rule>): justification`.
struct Suppression {
  size_t line = 0;
  std::string rule;
  std::string justification;  // text after the closing paren, trimmed
};

struct FileIndex {
  std::string path;
  std::vector<Token> tokens;  // preprocessor-directive tokens filtered out
  std::vector<Comment> comments;
  std::vector<FunctionInfo> functions;
  std::vector<FieldInfo> fields;
  std::vector<Suppression> suppressions;
};

/// The merged, whole-repo view.
struct RepoIndex {
  std::vector<FileIndex> files;  // sorted by path

  // Names (last component) of functions whose outputs are untrusted bytes /
  // borrowed views. Seeded from annotations; the taint pass extends
  // `untrusted_functions` via summary propagation.
  std::set<std::string> untrusted_functions;
  std::set<std::string> borrowed_view_functions;

  // class -> field -> info. Unannotated fields are here too (type_head is
  // what lets passes resolve member chains like `shard->queue.Pop`).
  std::map<std::string, std::map<std::string, FieldInfo>> fields_by_class;

  // function name (last component) -> every declaration/definition seen.
  // Indices into files/functions rather than pointers so the structure is
  // copyable; resolved via function_at().
  struct FunctionRef {
    size_t file = 0;
    size_t fn = 0;
  };
  std::map<std::string, std::vector<FunctionRef>> functions_by_name;

  const FunctionInfo& function_at(FunctionRef ref) const {
    return files[ref.file].functions[ref.fn];
  }
};

/// Tokenizes and indexes one file. `path` is repo-relative.
FileIndex IndexFile(std::string path, std::string_view content);

/// Merges per-file indexes (sorted by path; annotation tables unioned).
RepoIndex BuildRepoIndex(std::vector<FileIndex> files);

/// Stable, human-readable dump of every function/field summary — the
/// determinism oracle for tests and `wican --dump`.
std::string DebugSummary(const RepoIndex& index);

}  // namespace analyze
}  // namespace wiclean

#endif  // WICLEAN_TOOLS_ANALYZE_INDEX_H_
