#ifndef WICLEAN_TOOLS_ANALYZE_PASSES_H_
#define WICLEAN_TOOLS_ANALYZE_PASSES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "index.h"

namespace wiclean {
namespace analyze {

/// The three wican passes (see DESIGN.md "Checks"). All operate on the
/// whole-repo RepoIndex, so dataflow crosses translation units: a function
/// annotated WC_UNTRUSTED in src/log/action_log_codec.cc taints its callers
/// in src/log/replay.cc, and a lock acquired in src/dump/pipeline.cc
/// composes with one acquired inside src/common/bounded_queue.h.
///
/// Rules:
///   tainted-size      untrusted decoded value reaches an allocation size,
///                     resize/reserve argument, loop bound, array index, or
///                     memcpy length without a bounds gate
///   lock-order        lock-acquisition cycle or self-deadlock in the
///                     cross-file MutexLock graph
///   unguarded-access  WC_GUARDED_BY field accessed outside any scope that
///                     holds its mutex
///   view-escape       string_view/span aliasing short-lived memory stored
///                     in a member, returned, written through an out-param,
///                     or captured by deferred work
///   bad-suppression   wican:allow comment with a missing/trivial
///                     justification
struct AnalyzeFinding {
  std::string path;
  size_t line = 0;
  std::string rule;
  std::string message;

  std::string ToString() const;
};

std::vector<AnalyzeFinding> RunTaintPass(const RepoIndex& index);
std::vector<AnalyzeFinding> RunLockPass(const RepoIndex& index);
std::vector<AnalyzeFinding> RunLifetimePass(const RepoIndex& index);

/// Runs all passes, applies `// wican:allow(<rule>)` suppressions (same
/// line or the line above; a justification of at least 10 characters is
/// required, enforced via the bad-suppression rule), dedupes, and returns
/// findings sorted by path/line/rule.
std::vector<AnalyzeFinding> RunAllPasses(const RepoIndex& index);

}  // namespace analyze
}  // namespace wiclean

#endif  // WICLEAN_TOOLS_ANALYZE_PASSES_H_
