#include "passes.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace wiclean {
namespace analyze {
namespace {

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }

bool IsViewType(const std::string& type_head) {
  return type_head == "string_view" || type_head == "Span" ||
         type_head == "span";
}

bool IsOwningContainer(const std::string& type_head) {
  return type_head == "string" || type_head == "basic_string" ||
         type_head == "vector" || type_head == "deque" ||
         type_head == "array" || type_head == "ostringstream" ||
         type_head == "stringstream";
}

bool IsLockType(const std::string& type_head) {
  return type_head == "MutexLock" || type_head == "lock_guard" ||
         type_head == "unique_lock" || type_head == "scoped_lock";
}

bool IsComparisonOp(const std::string& text) {
  return text == "<" || text == ">" || text == "<=" || text == ">=" ||
         text == "==" || text == "!=";
}

bool IsSizeSinkCallee(const std::string& name) {
  static const std::set<std::string> kSinks = {
      "resize", "reserve", "memcpy",  "memmove", "memset",
      "malloc", "calloc",  "realloc", "alloca",  "strncpy",
  };
  return kSinks.count(name) != 0;
}

bool IsDeferredCallee(const std::string& name) {
  static const std::set<std::string> kDeferred = {
      "Submit", "Push", "Defer", "Enqueue", "Post", "PostTask", "Schedule",
  };
  return kDeferred.count(name) != 0;
}

/// Container metadata accessors: calling these on an untrusted container is
/// bounded by the container's real (already validated) extent, so the result
/// is not itself attacker-amplifiable.
bool IsMetadataCall(const std::string& name) {
  return name == "size" || name == "length" || name == "data" ||
         name == "empty" || name == "remaining" || name == "capacity" ||
         name == "begin" || name == "end";
}

/// Keywords that can never start a local declaration's type.
bool IsStatementKeyword(const std::string& s) {
  static const std::set<std::string> kSet = {
      "return",  "delete", "throw",    "if",     "for",      "while",
      "switch",  "do",     "else",     "break",  "continue", "case",
      "goto",    "new",    "co_return", "sizeof", "default",  "using",
      "typedef", "public", "private",  "protected",
  };
  return kSet.count(s) != 0;
}

size_t SkipBalanced(const std::vector<Token>& t, size_t i,
                    std::string_view open, std::string_view close,
                    size_t limit) {
  int depth = 0;
  for (; i < limit; ++i) {
    if (t[i].text == open) {
      ++depth;
    } else if (t[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return limit;
}

/// Tries to skip a template argument list at '<' (index i). Fails (returns
/// npos) if a ';', '{' or '}' is hit first — which means the '<' was a
/// comparison, not template arguments.
size_t TrySkipAngles(const std::vector<Token>& t, size_t i, size_t limit) {
  int depth = 0;
  for (; i < limit; ++i) {
    const std::string& x = t[i].text;
    if (x == ";" || x == "{" || x == "}") return std::string::npos;
    if (x == "(") {
      i = SkipBalanced(t, i, "(", ")", limit) - 1;
      continue;
    }
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return i + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// A member chain: `a.b->c` / `this->x` / `std::min` read as components
/// ("::"-qualified names merge into one component).
struct Chain {
  std::vector<std::string> comps;
  size_t begin = 0;
  size_t end = 0;  // one past the last token

  std::string Key() const {
    std::string k;
    for (const std::string& c : comps) {
      if (!k.empty()) k += ".";
      k += c;
    }
    return k;
  }
  std::string Last() const { return comps.empty() ? "" : comps.back(); }
  /// Unqualified callee name: "std::min" -> "min".
  std::string LastUnqualified() const {
    std::string l = Last();
    size_t pos = l.rfind("::");
    return pos == std::string::npos ? l : l.substr(pos + 2);
  }
};

Chain ReadChain(const std::vector<Token>& t, size_t i, size_t limit) {
  Chain c;
  c.begin = i;
  std::string cur = t[i].text;
  size_t j = i + 1;
  while (j + 1 < limit + 1) {
    if (j + 1 < limit && t[j].text == "::" && IsIdent(t[j + 1])) {
      cur += "::" + t[j + 1].text;
      j += 2;
      continue;
    }
    if (j + 1 < limit && (t[j].text == "." || t[j].text == "->") &&
        IsIdent(t[j + 1])) {
      c.comps.push_back(cur);
      cur = t[j + 1].text;
      j += 2;
      continue;
    }
    break;
  }
  c.comps.push_back(cur);
  c.end = j;
  return c;
}

/// True when token i starts a chain (is an identifier not preceded by a
/// member/scope separator).
bool StartsChain(const std::vector<Token>& t, size_t i, size_t begin) {
  if (!IsIdent(t[i])) return false;
  if (i == begin) return true;
  const std::string& p = t[i - 1].text;
  return p != "." && p != "->" && p != "::" && p != "~";
}

// ---------------------------------------------------------------------------
// Local declarations
// ---------------------------------------------------------------------------

struct LocalDecl {
  std::string type_head;
  size_t name_tok = 0;
  size_t init_begin = 0;  // == init_end when there is no initializer
  size_t init_end = 0;
  bool is_ctor_call = false;  // `Type name(args);` or `Type name{args};`
};

struct FnContext {
  const FileIndex* file = nullptr;
  const FunctionInfo* fn = nullptr;
  std::map<std::string, LocalDecl> locals;     // name -> declaration
  std::map<size_t, std::string> decl_at;       // name_tok -> name
};

/// Collects `Type name = ...;` / `Type name(args);` / range-for declarations
/// (and WICLEAN_ASSIGN_OR_RETURN(Type name, expr)) from a body token range.
void CollectLocalDecls(const std::vector<Token>& t, size_t b, size_t e,
                       FnContext* ctx) {
  auto record = [&](std::string name, LocalDecl decl) {
    ctx->decl_at[decl.name_tok] = name;
    ctx->locals[std::move(name)] = std::move(decl);
  };
  for (size_t i = b; i < e; ++i) {
    if (!IsIdent(t[i])) continue;
    bool stmt_start =
        i == b || t[i - 1].text == ";" || t[i - 1].text == "{" ||
        t[i - 1].text == "}" ||
        (t[i - 1].text == "(" && i >= 2 && t[i - 2].text == "for");
    if (!stmt_start) continue;
    const std::string& head = t[i].text;
    if (IsStatementKeyword(head)) continue;

    if (head == "WICLEAN_ASSIGN_OR_RETURN" && i + 1 < e &&
        t[i + 1].text == "(") {
      size_t close = SkipBalanced(t, i + 1, "(", ")", e);
      // First macro argument is `Type name`; the rest is the initializer.
      size_t comma = std::string::npos;
      int depth = 0;
      for (size_t j = i + 2; j + 1 < close; ++j) {
        const std::string& x = t[j].text;
        if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
        if (x == ")" || x == "]" || x == "}" || x == ">") --depth;
        if (x == "," && depth == 0) {
          comma = j;
          break;
        }
      }
      if (comma != std::string::npos && comma >= i + 4 &&
          IsIdent(t[comma - 1])) {
        LocalDecl d;
        d.name_tok = comma - 1;
        d.init_begin = comma + 1;
        d.init_end = close > 0 ? close - 1 : comma + 1;
        for (size_t j = comma - 1; j-- > i + 2;) {
          if (IsIdent(t[j])) {
            d.type_head = t[j].text;
            break;
          }
          if (t[j].text != "*" && t[j].text != "&" && t[j].text != "&&" &&
              t[j].text != ">" && t[j].text != "::")
            break;
          if (t[j].text == ">") {
            // Back over template args to the type name.
            int ad = 0;
            while (j < e && j > i + 1) {
              if (t[j].text == ">") ++ad;
              if (t[j].text == "<" && --ad == 0) break;
              --j;
            }
          }
        }
        record(t[comma - 1].text, d);
      }
      i = close - 1;
      continue;
    }

    // Type chain: ident(::ident)* with one optional <...> group, then
    // pointer/ref modifiers, then the name.
    size_t j = i;
    std::string type_head;
    bool ok = false;
    while (j < e && IsIdent(t[j])) {
      if (IsStatementKeyword(t[j].text)) break;
      if (t[j].text != "const" && t[j].text != "constexpr" &&
          t[j].text != "static" && t[j].text != "typename" &&
          t[j].text != "volatile") {
        type_head = t[j].text;
      }
      ++j;
      if (j < e && t[j].text == "<") {
        size_t past = TrySkipAngles(t, j, e);
        if (past == std::string::npos) break;
        j = past;
      }
      if (j < e && t[j].text == "::" && j + 1 < e && IsIdent(t[j + 1])) {
        ++j;
        continue;
      }
      ok = !type_head.empty();
      break;
    }
    if (!ok || type_head.empty()) continue;
    while (j < e && (t[j].text == "*" || t[j].text == "&" ||
                     t[j].text == "&&" || t[j].text == "const"))
      ++j;
    if (j >= e || !IsIdent(t[j]) || IsStatementKeyword(t[j].text)) continue;
    size_t name_tok = j;
    if (j + 1 >= e) continue;
    const std::string& after = t[j + 1].text;
    LocalDecl d;
    d.type_head = type_head;
    d.name_tok = name_tok;
    if (after == "=") {
      d.init_begin = j + 2;
      int depth = 0;
      size_t k = j + 2;
      for (; k < e; ++k) {
        const std::string& x = t[k].text;
        if (x == "(" || x == "[" || x == "{") ++depth;
        if (x == ")" || x == "]" || x == "}") --depth;
        if (depth < 0 || (x == ";" && depth == 0)) break;
      }
      d.init_end = k;
    } else if (after == "(") {
      d.is_ctor_call = true;
      d.init_begin = j + 2;
      d.init_end = SkipBalanced(t, j + 1, "(", ")", e) - 1;
    } else if (after == "{") {
      d.is_ctor_call = true;
      d.init_begin = j + 2;
      d.init_end = SkipBalanced(t, j + 1, "{", "}", e) - 1;
    } else if (after == ":") {
      // Range-for: `for (const auto& x : range)`.
      d.init_begin = j + 2;
      int depth = 0;
      size_t k = j + 2;
      for (; k < e; ++k) {
        const std::string& x = t[k].text;
        if (x == "(" || x == "[" || x == "{") ++depth;
        if ((x == ")" || x == "]" || x == "}") && depth-- == 0) break;
        if (x == ";" && depth == 0) break;
      }
      d.init_end = k;
    } else if (after == ";" || after == ",") {
      d.init_begin = d.init_end = j + 1;
    } else {
      continue;
    }
    record(t[name_tok].text, d);
  }
}

// ---------------------------------------------------------------------------
// Chain resolution against the repo index
// ---------------------------------------------------------------------------

const FieldInfo* LookupField(const RepoIndex& idx, const std::string& cls,
                             const std::string& name) {
  auto it = idx.fields_by_class.find(cls);
  if (it == idx.fields_by_class.end()) return nullptr;
  auto fit = it->second.find(name);
  return fit == it->second.end() ? nullptr : &fit->second;
}

const ParamInfo* LookupParam(const FunctionInfo& fn, const std::string& name) {
  for (const ParamInfo& p : fn.params) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

/// Resolves a chain to its final field, walking member types:
/// `state.pending` -> MergeState::pending. Returns nullptr when any step
/// fails to resolve.
const FieldInfo* ResolveField(const RepoIndex& idx, const FnContext& ctx,
                              const std::vector<std::string>& comps) {
  if (comps.empty()) return nullptr;
  std::string cls;
  size_t pos = 0;
  const std::string& head = comps[0];
  if (head == "this") {
    cls = ctx.fn->class_name;
    pos = 1;
  } else if (ctx.locals.count(head) != 0) {
    cls = ctx.locals.at(head).type_head;
    pos = 1;
  } else if (const ParamInfo* p = LookupParam(*ctx.fn, head)) {
    cls = p->type_head;
    pos = 1;
  } else {
    cls = ctx.fn->class_name;  // bare member of the enclosing class
  }
  if (pos >= comps.size() && pos == 1) return nullptr;
  const FieldInfo* f = nullptr;
  for (; pos < comps.size(); ++pos) {
    f = LookupField(idx, cls, comps[pos]);
    if (f == nullptr) return nullptr;
    cls = f->type_head;
  }
  return f;
}

/// Resolves the static type (head) of a chain: a receiver for method-call
/// resolution. Empty string when unknown.
std::string ResolveChainType(const RepoIndex& idx, const FnContext& ctx,
                             const std::vector<std::string>& comps) {
  if (comps.empty()) return "";
  const std::string& head = comps[0];
  std::string cls;
  size_t pos = 1;
  if (head == "this") {
    cls = ctx.fn->class_name;
  } else if (ctx.locals.count(head) != 0) {
    cls = ctx.locals.at(head).type_head;
  } else if (const ParamInfo* p = LookupParam(*ctx.fn, head)) {
    cls = p->type_head;
  } else if (const FieldInfo* f =
                 LookupField(idx, ctx.fn->class_name, head)) {
    cls = f->type_head;
  } else {
    return "";
  }
  for (; pos < comps.size(); ++pos) {
    const FieldInfo* f = LookupField(idx, cls, comps[pos]);
    if (f == nullptr) return "";
    cls = f->type_head;
  }
  return cls;
}

std::vector<const FunctionInfo*> FindFunctionDefs(
    const RepoIndex& idx, const std::string& name,
    const std::string& receiver_class, const std::string& caller_class) {
  std::vector<const FunctionInfo*> out;
  auto it = idx.functions_by_name.find(name);
  if (it == idx.functions_by_name.end()) return out;
  for (RepoIndex::FunctionRef ref : it->second) {
    const FunctionInfo& fn = idx.function_at(ref);
    if (!fn.is_definition) continue;
    if (!receiver_class.empty()) {
      if (fn.class_name == receiver_class) out.push_back(&fn);
    } else {
      out.push_back(&fn);
    }
  }
  if (receiver_class.empty() && out.size() > 1) {
    // No receiver: prefer a method of the caller's own class, then a free
    // function; ambiguity otherwise.
    std::vector<const FunctionInfo*> same, free_fns;
    for (const FunctionInfo* f : out) {
      if (!caller_class.empty() && f->class_name == caller_class)
        same.push_back(f);
      if (f->class_name.empty()) free_fns.push_back(f);
    }
    if (same.size() == 1) return same;
    if (free_fns.size() == 1) return free_fns;
    out.clear();  // ambiguous — resolve to nothing rather than guess
  }
  return out;
}

// ---------------------------------------------------------------------------
// Taint pass
// ---------------------------------------------------------------------------

struct TaintSummary {
  bool returns_taint = false;
  bool taints_outparam = false;
};

struct TaintEngine {
  const RepoIndex& idx;
  // Two summaries per function name: calling a `ret` function yields a
  // tainted result; calling an `out` function taints its `&arg` operands.
  // Kept separate so a function that merely *returns* tainted stats does not
  // smear taint over every object passed to it by pointer.
  const std::set<std::string>& untrusted_ret;
  const std::set<std::string>& untrusted_out;
  const FileIndex& file;
  const FunctionInfo& fn;
  FnContext ctx;
  std::set<std::string> tainted;  // chain keys
  std::vector<AnalyzeFinding>* findings;  // null during summary iterations
  TaintSummary summary;

  TaintEngine(const RepoIndex& i, const std::set<std::string>& ret,
              const std::set<std::string>& out_set, const FileIndex& f,
              const FunctionInfo& func, std::vector<AnalyzeFinding>* out)
      : idx(i),
        untrusted_ret(ret),
        untrusted_out(out_set),
        file(f),
        fn(func),
        findings(out) {
    ctx.file = &f;
    ctx.fn = &func;
    CollectLocalDecls(f.tokens, func.body_begin, func.body_end, &ctx);
    for (const ParamInfo& p : func.params) {
      if (p.untrusted && !p.name.empty()) tainted.insert(p.name);
    }
  }

  bool ChainTainted(const Chain& c, bool is_call) const {
    if (is_call && IsMetadataCall(c.LastUnqualified())) return false;
    if (is_call) {
      if (untrusted_ret.count(c.LastUnqualified()) != 0) return true;
      // The receiver being tainted does not make a call result tainted
      // unless the callee itself is untrusted (metadata rule above is the
      // common case; other calls on tainted objects are unknown — treat the
      // receiver occurrence conservatively below only for non-calls).
    }
    std::string key = c.Key();
    for (const std::string& tk : tainted) {
      if (key == tk) return true;
      if (key.size() > tk.size() && key.compare(0, tk.size(), tk) == 0 &&
          key[tk.size()] == '.')
        return true;  // member of a tainted aggregate
    }
    if (!is_call) {
      const FieldInfo* f = ResolveField(idx, ctx, c.comps);
      if (f != nullptr && f->untrusted) return true;
    }
    return false;
  }

  /// Does any tainted value occur in [b, e)? WC_BOUNDS_CHECKED(...) regions
  /// are skipped — the annotation asserts the wrapped value is bounded.
  bool ExprTainted(size_t b, size_t e) const {
    const std::vector<Token>& t = file.tokens;
    for (size_t i = b; i < e; ++i) {
      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      if (c.Key() == "WC_BOUNDS_CHECKED" && c.end < e &&
          t[c.end].text == "(") {
        i = SkipBalanced(t, c.end, "(", ")", e) - 1;
        continue;
      }
      bool is_call = c.end < e && t[c.end].text == "(";
      if (ChainTainted(c, is_call)) return true;
      i = c.end - 1;
    }
    return false;
  }

  bool ExprHasComparison(size_t b, size_t e) const {
    for (size_t i = b; i < e; ++i) {
      if (IsComparisonOp(file.tokens[i].text)) return true;
    }
    return false;
  }

  /// Removes taint from every tainted chain that occurs in [b, e).
  void GateExpr(size_t b, size_t e) {
    const std::vector<Token>& t = file.tokens;
    std::vector<std::string> cleared;
    for (size_t i = b; i < e; ++i) {
      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      std::string key = c.Key();
      for (const std::string& tk : tainted) {
        if (tk == key) cleared.push_back(tk);
      }
      i = c.end - 1;
    }
    for (const std::string& k : cleared) tainted.erase(k);
  }

  void Report(size_t line, const std::string& message) {
    if (findings == nullptr) return;
    findings->push_back(
        AnalyzeFinding{file.path, line, "tainted-size", message});
  }

  /// Extracts the condition range of a for-header: between its two
  /// top-level ';' tokens.
  bool ForCondRange(size_t open, size_t close, size_t* cb, size_t* ce) const {
    const std::vector<Token>& t = file.tokens;
    int depth = 0;
    size_t first = 0, second = 0;
    for (size_t i = open + 1; i < close; ++i) {
      const std::string& x = t[i].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (x == ";" && depth == 0) {
        if (first == 0) {
          first = i;
        } else {
          second = i;
          break;
        }
      }
    }
    if (first == 0 || second == 0) return false;
    *cb = first + 1;
    *ce = second;
    return true;
  }

  void Run() {
    const std::vector<Token>& t = file.tokens;
    const size_t b = fn.body_begin, e = fn.body_end;
    for (size_t i = b; i < e; ++i) {
      const std::string& x = t[i].text;

      // Declarations with initializers behave like assignments.
      auto decl_it = ctx.decl_at.find(i);
      if (decl_it != ctx.decl_at.end()) {
        const LocalDecl& d = ctx.locals.at(decl_it->second);
        if (d.init_end > d.init_begin) {
          HandleAssign(decl_it->second, d.init_begin, d.init_end,
                       /*compound=*/false, t[i].line);
          if (d.is_ctor_call && IsOwningContainer(d.type_head) &&
              ExprTainted(d.init_begin, d.init_end)) {
            Report(t[i].line,
                   "tainted value used as " + d.type_head +
                       " construction size for '" + decl_it->second +
                       "' without a bounds gate");
          }
        }
        continue;
      }

      if (!IsIdent(t[i])) {
        if (x == "[" && i > b &&
            (IsIdent(t[i - 1]) || t[i - 1].text == ")" ||
             t[i - 1].text == "]")) {
          size_t close = SkipBalanced(t, i, "[", "]", e);
          if (ExprTainted(i + 1, close - 1)) {
            Report(t[i].line,
                   "tainted value used as array index without a bounds gate");
            GateExpr(i + 1, close - 1);  // report each index once
          }
          continue;
        }
        if (x == "=" || x == "+=" || x == "-=" || x == "*=" || x == "|=" ||
            x == "&=" || x == "^=" || x == "<<=" || x == ">>=") {
          HandleAssignAt(i);
        }
        continue;
      }

      // Identifier-led constructs.
      if (x == "if" && i + 1 < e && t[i + 1].text == "(") {
        size_t close = SkipBalanced(t, i + 1, "(", ")", e);
        if (ExprHasComparison(i + 2, close - 1)) GateExpr(i + 2, close - 1);
        continue;  // still scan the condition tokens for sinks
      }
      if ((x == "while" || x == "for") && i + 1 < e &&
          t[i + 1].text == "(") {
        size_t close = SkipBalanced(t, i + 1, "(", ")", e);
        size_t cb = i + 2, ce = close - 1;
        bool have = x == "while" ? true : ForCondRange(i + 1, close - 1, &cb,
                                                       &ce);
        if (have && ExprHasComparison(cb, ce) && ExprTainted(cb, ce)) {
          Report(t[i].line,
                 "tainted value used as loop bound without a bounds gate");
          GateExpr(cb, ce);
        }
        continue;
      }
      if (x == "WC_BOUNDS_CHECKED" && i + 1 < e && t[i + 1].text == "(") {
        size_t close = SkipBalanced(t, i + 1, "(", ")", e);
        GateExpr(i + 2, close - 1);
        i = i + 1;  // contents still scanned for nested sinks
        continue;
      }
      if (x == "return") {
        size_t j = i + 1;
        int depth = 0;
        for (; j < e; ++j) {
          const std::string& y = t[j].text;
          if (y == "(" || y == "[" || y == "{") ++depth;
          if (y == ")" || y == "]" || y == "}") --depth;
          if (y == ";" && depth <= 0) break;
        }
        if (ExprTainted(i + 1, j)) summary.returns_taint = true;
        continue;
      }

      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      bool is_call = c.end < e && t[c.end].text == "(";
      if (is_call) {
        size_t close = SkipBalanced(t, c.end, "(", ")", e);
        const std::string callee = c.LastUnqualified();
        if (IsSizeSinkCallee(callee) && ExprTainted(c.end + 1, close - 1)) {
          Report(t[i].line, "tainted value reaches " + callee +
                                "() without a bounds gate");
          GateExpr(c.end + 1, close - 1);
        }
        if (untrusted_out.count(callee) != 0) {
          TaintOutArgs(c.end, close);
        }
        i = c.end - 1;
        continue;
      }
      i = c.end - 1;
    }
  }

  /// `&chain` arguments of a call to an untrusted function become tainted.
  void TaintOutArgs(size_t open, size_t close) {
    const std::vector<Token>& t = file.tokens;
    int depth = 0;
    for (size_t i = open + 1; i + 1 < close; ++i) {
      const std::string& x = t[i].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (depth != 0 || x != "&") continue;
      bool arg_start = t[i - 1].text == "(" || t[i - 1].text == ",";
      if (!arg_start || i + 1 >= close || !IsIdent(t[i + 1])) continue;
      Chain c = ReadChain(t, i + 1, close);
      tainted.insert(c.Key());
      MarkOutparamIfParam(c);
    }
  }

  void MarkOutparamIfParam(const Chain& c) {
    if (c.comps.size() != 1) return;
    // Writing taint through a pointer/reference parameter escapes to the
    // caller — the function behaves like an untrusted source.
    if (LookupParam(fn, c.comps[0]) != nullptr) summary.taints_outparam = true;
  }

  void HandleAssignAt(size_t eq) {
    const std::vector<Token>& t = file.tokens;
    const size_t b = fn.body_begin, e = fn.body_end;
    if (eq == b || !IsIdent(t[eq - 1])) return;
    // Walk the LHS chain backwards.
    size_t s = eq - 1;
    while (s > b && (t[s - 1].text == "." || t[s - 1].text == "->" ||
                     t[s - 1].text == "::")) {
      if (s >= 2 && IsIdent(t[s - 2]))
        s -= 2;
      else
        break;
    }
    bool deref = s > b && t[s - 1].text == "*";
    Chain lhs = ReadChain(t, s, eq);
    // RHS extent.
    size_t re = eq + 1;
    int depth = 0;
    for (; re < e; ++re) {
      const std::string& x = t[re].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      if (depth < 0 || (x == ";" && depth == 0) ||
          (x == "," && depth == 0))
        break;
    }
    HandleAssign(lhs.Key(), eq + 1, re, t[eq].text != "=", t[eq].line);
    if (deref && lhs.comps.size() == 1 &&
        LookupParam(fn, lhs.comps[0]) != nullptr &&
        ExprTainted(eq + 1, re)) {
      summary.taints_outparam = true;
    }
  }

  void HandleAssign(const std::string& lhs_key, size_t rb, size_t re,
                    bool compound, size_t /*line*/) {
    bool rhs_tainted = ExprTainted(rb, re);
    bool clamped = RhsClamped(rb, re);
    if (rhs_tainted && !clamped) {
      tainted.insert(lhs_key);
    } else if (!compound) {
      tainted.erase(lhs_key);
    }
  }

  /// `std::min(...)` or a compare-guarded ternary on the RHS bounds the
  /// result.
  bool RhsClamped(size_t rb, size_t re) const {
    const std::vector<Token>& t = file.tokens;
    bool has_cmp = false, has_ternary = false;
    for (size_t i = rb; i < re; ++i) {
      if (IsComparisonOp(t[i].text)) has_cmp = true;
      if (t[i].text == "?") has_ternary = true;
      if (StartsChain(t, i, rb)) {
        Chain c = ReadChain(t, i, re);
        if (c.LastUnqualified() == "min" && c.end < re) {
          // Allow explicit template args: std::min<uint64_t>(a, b).
          size_t open = c.end;
          if (t[open].text == "<") {
            size_t past = TrySkipAngles(t, open, re);
            open = past == std::string::npos ? re : past;
          }
          if (open < re && t[open].text == "(") return true;
        }
        i = c.end - 1;
      }
    }
    return has_cmp && has_ternary;
  }
};

std::vector<AnalyzeFinding> TaintPassImpl(const RepoIndex& idx) {
  // Annotated functions are untrusted in both senses; propagation then keeps
  // the two directions separate (see TaintEngine).
  std::set<std::string> untrusted_ret = idx.untrusted_functions;
  std::set<std::string> untrusted_out = idx.untrusted_functions;
  // Fixed-point summary propagation: a function that returns or writes
  // tainted data becomes an untrusted source for its callers.
  for (int iter = 0; iter < 5; ++iter) {
    bool changed = false;
    for (const FileIndex& file : idx.files) {
      for (const FunctionInfo& fn : file.functions) {
        if (!fn.is_definition) continue;
        TaintEngine engine(idx, untrusted_ret, untrusted_out, file, fn,
                           nullptr);
        engine.Run();
        bool added = false;
        if (engine.summary.returns_taint &&
            untrusted_ret.insert(fn.name).second)
          added = true;
        if (engine.summary.taints_outparam &&
            untrusted_out.insert(fn.name).second)
          added = true;
        if (added) {
          if (std::getenv("WICAN_DEBUG_PROPAGATION") != nullptr) {
            std::fprintf(stderr, "prop[%d]: %s (%s:%zu) ret=%d out=%d\n",
                         iter, fn.qualified_name.c_str(), file.path.c_str(),
                         fn.line, engine.summary.returns_taint ? 1 : 0,
                         engine.summary.taints_outparam ? 1 : 0);
          }
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  std::vector<AnalyzeFinding> findings;
  for (const FileIndex& file : idx.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition) continue;
      TaintEngine engine(idx, untrusted_ret, untrusted_out, file, fn,
                         &findings);
      engine.Run();
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Lock pass
// ---------------------------------------------------------------------------

struct LockKey {
  std::string key;
  bool usable = false;  // false: unresolvable (e.g. mutex via parameter)
};

struct HeldLock {
  std::string key;
  int depth = 0;
  size_t line = 0;
};

struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  size_t line = 0;
};

struct CallSite {
  std::string callee;
  std::string receiver_class;
  std::vector<std::string> held;
  size_t line = 0;
};

struct LockFacts {
  std::set<std::string> acquires;  // keys acquired anywhere inside
  std::vector<CallSite> calls;
  std::vector<LockEdge> edges;  // direct nested acquisitions
  std::vector<AnalyzeFinding> self_findings;
  std::vector<AnalyzeFinding> guard_findings;
};

struct LockEngine {
  const RepoIndex& idx;
  const FileIndex& file;
  const FunctionInfo& fn;
  FnContext ctx;
  LockFacts facts;

  // WC_REQUIRES / WC_NO_THREAD_SAFETY_ANALYSIS usually live on the in-class
  // declaration while the body is an out-of-class definition; merge the
  // annotations from every same-class declaration of this function.
  std::vector<std::string> effective_requires;
  bool effective_no_analysis = false;

  LockEngine(const RepoIndex& i, const FileIndex& f, const FunctionInfo& func)
      : idx(i), file(f), fn(func) {
    ctx.file = &f;
    ctx.fn = &func;
    CollectLocalDecls(f.tokens, func.body_begin, func.body_end, &ctx);
    effective_requires = func.requires_locks;
    effective_no_analysis = func.no_analysis;
    auto it = idx.functions_by_name.find(func.name);
    if (it != idx.functions_by_name.end()) {
      for (RepoIndex::FunctionRef ref : it->second) {
        const FunctionInfo& other = idx.function_at(ref);
        if (other.class_name != func.class_name) continue;
        effective_requires.insert(effective_requires.end(),
                                  other.requires_locks.begin(),
                                  other.requires_locks.end());
        effective_no_analysis = effective_no_analysis || other.no_analysis;
      }
    }
  }

  bool IsCtorOrDtor() const {
    return !fn.class_name.empty() &&
           (fn.name == fn.class_name || fn.name == "~" + fn.class_name);
  }

  LockKey ResolveLockArg(size_t b, size_t e) {
    const std::vector<Token>& t = file.tokens;
    size_t i = b;
    while (i < e && (t[i].text == "&" || t[i].text == "(")) ++i;
    if (i >= e || !IsIdent(t[i])) return LockKey{};
    Chain c = ReadChain(t, i, e);
    if (c.end < e && t[c.end].text == "(") {
      // A function returning the mutex, e.g. OutputMutex(). One global key
      // per function name.
      return LockKey{c.Key() + "()", true};
    }
    return ResolveMutexChain(c);
  }

  LockKey ResolveMutexChain(const Chain& c) {
    const FieldInfo* f = ResolveField(idx, ctx, c.comps);
    if (f != nullptr) return LockKey{f->class_name + "::" + f->name, true};
    if (c.comps.size() == 1 &&
        LookupParam(fn, c.comps[0]) != nullptr) {
      // Mutex via parameter: identity unknown at this site — skip rather
      // than fabricate edges (the caller's view has the real key).
      return LockKey{};
    }
    if (ctx.locals.count(c.comps[0]) != 0 &&
        ResolveField(idx, ctx, c.comps) == nullptr &&
        c.comps.size() >= 2) {
      // Local aggregate whose type we could not resolve: keep a raw,
      // function-local key so lexical held-checks still work.
      return LockKey{fn.qualified_name + "/" + c.Key(), true};
    }
    if (c.comps.size() == 1 && ctx.locals.count(c.comps[0]) != 0) {
      return LockKey{fn.qualified_name + "/" + c.Key(), true};
    }
    return LockKey{};
  }

  void Run() {
    const std::vector<Token>& t = file.tokens;
    const size_t b = fn.body_begin, e = fn.body_end;
    std::vector<HeldLock> held;
    int depth = 0;

    std::set<std::string> entry_held;
    for (const std::string& req : effective_requires) {
      // Requires expressions are raw chain text like "mu_" or "state.mu".
      TokenizedFile tf = Tokenize(req);
      if (tf.tokens.empty() || !IsIdent(tf.tokens[0])) continue;
      // Re-resolve in this function's context via a chain over the parsed
      // components.
      Chain c;
      c.comps.push_back(tf.tokens[0].text);
      for (size_t k = 1; k + 1 < tf.tokens.size(); k += 2) {
        if ((tf.tokens[k].text == "." || tf.tokens[k].text == "->") &&
            IsIdent(tf.tokens[k + 1]))
          c.comps.push_back(tf.tokens[k + 1].text);
      }
      LockKey key = ResolveMutexChain(c);
      if (key.usable) entry_held.insert(key.key);
    }

    auto held_keys = [&]() {
      std::vector<std::string> keys(entry_held.begin(), entry_held.end());
      for (const HeldLock& h : held) keys.push_back(h.key);
      return keys;
    };
    auto is_held = [&](const std::string& key) {
      if (entry_held.count(key) != 0) return true;
      for (const HeldLock& h : held) {
        if (h.key == key) return true;
      }
      return false;
    };
    auto acquire = [&](const LockKey& key, size_t line) {
      if (!key.usable) return;
      if (is_held(key.key)) {
        facts.self_findings.push_back(AnalyzeFinding{
            file.path, line, "lock-order",
            "self-deadlock: '" + key.key + "' acquired while already held"});
      }
      for (const std::string& h : held_keys()) {
        if (h != key.key)
          facts.edges.push_back(LockEdge{h, key.key, file.path, line});
      }
      facts.acquires.insert(key.key);
      held.push_back(HeldLock{key.key, depth, line});
    };

    for (size_t i = b; i < e; ++i) {
      const std::string& x = t[i].text;
      if (x == "{") {
        ++depth;
        continue;
      }
      if (x == "}") {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        continue;
      }
      auto decl_it = ctx.decl_at.find(i);
      if (decl_it != ctx.decl_at.end()) {
        const LocalDecl& d = ctx.locals.at(decl_it->second);
        if (IsLockType(d.type_head) && d.init_end > d.init_begin) {
          acquire(ResolveLockArg(d.init_begin, d.init_end), t[i].line);
        }
        continue;
      }
      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      bool is_call = c.end < e && t[c.end].text == "(";

      // Guarded-field access check (reads and writes look the same here).
      if (!effective_no_analysis && !IsCtorOrDtor()) {
        std::vector<std::string> field_comps = c.comps;
        if (is_call && field_comps.size() > 1) field_comps.pop_back();
        if (!is_call || field_comps.size() < c.comps.size()) {
          // Check every aggregate prefix: `state.pending.begin` must check
          // `state.pending` itself.
          for (size_t plen = 1; plen <= field_comps.size(); ++plen) {
            std::vector<std::string> prefix(field_comps.begin(),
                                            field_comps.begin() + plen);
            const FieldInfo* f = ResolveField(idx, ctx, prefix);
            if (f == nullptr || f->guarded_by.empty()) continue;
            std::string need = f->class_name + "::" + f->guarded_by;
            // Guard expressions naming a sibling field: re-key via the same
            // owner chain (`state.pending` guarded_by mu -> `state.mu`).
            if (!is_held(need)) {
              bool ok = false;
              if (plen >= 2) {
                std::vector<std::string> owner(prefix.begin(),
                                               prefix.end() - 1);
                owner.push_back(f->guarded_by);
                Chain oc;
                oc.comps = owner;
                LockKey alt = ResolveMutexChain(oc);
                ok = alt.usable && is_held(alt.key);
              }
              if (!ok) {
                facts.guard_findings.push_back(AnalyzeFinding{
                    file.path, t[i].line, "unguarded-access",
                    "'" + f->class_name + "::" + f->name +
                        "' (guarded by " + f->guarded_by +
                        ") accessed without holding the lock"});
              }
            }
            break;  // only report the innermost guarded prefix once
          }
        }
      }

      if (is_call) {
        const std::string callee = c.LastUnqualified();
        if (callee == "Lock" && c.comps.size() >= 2) {
          Chain recv;
          recv.comps.assign(c.comps.begin(), c.comps.end() - 1);
          acquire(ResolveMutexChain(recv), t[i].line);
        } else if (callee == "Unlock" && c.comps.size() >= 2) {
          Chain recv;
          recv.comps.assign(c.comps.begin(), c.comps.end() - 1);
          LockKey key = ResolveMutexChain(recv);
          if (key.usable) {
            for (size_t h = held.size(); h-- > 0;) {
              if (held[h].key == key.key) {
                held.erase(held.begin() + h);
                break;
              }
            }
          }
        } else {
          std::vector<std::string> recv(c.comps.begin(), c.comps.end() - 1);
          std::string recv_class = recv.empty()
                                       ? ""
                                       : ResolveChainType(idx, ctx, recv);
          if (recv.empty() || !recv_class.empty()) {
            std::vector<std::string> hk = held_keys();
            if (!hk.empty()) {
              facts.calls.push_back(
                  CallSite{callee, recv_class, hk, t[i].line});
            }
          }
        }
        i = c.end - 1;
        continue;
      }
      i = c.end - 1;
    }
  }
};

std::vector<AnalyzeFinding> LockPassImpl(const RepoIndex& idx) {
  std::vector<AnalyzeFinding> findings;
  // Per-definition facts.
  std::map<const FunctionInfo*, LockFacts> facts;
  for (const FileIndex& file : idx.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition) continue;
      LockEngine engine(idx, file, fn);
      engine.Run();
      facts[&fn] = std::move(engine.facts);
    }
  }

  // Transitive closure of acquire sets across resolved calls.
  std::map<std::string, std::set<std::string>> closure;  // qualified -> keys
  for (const auto& [fn, f] : facts) {
    auto& slot = closure[fn->qualified_name];
    slot.insert(f.acquires.begin(), f.acquires.end());
  }
  for (int iter = 0; iter < 10; ++iter) {
    bool changed = false;
    for (const auto& [fn, f] : facts) {
      auto& slot = closure[fn->qualified_name];
      for (const CallSite& call : f.calls) {
        for (const FunctionInfo* target : FindFunctionDefs(
                 idx, call.callee, call.receiver_class, fn->class_name)) {
          auto it = closure.find(target->qualified_name);
          if (it == closure.end()) continue;
          for (const std::string& k : it->second) {
            changed = slot.insert(k).second || changed;
          }
        }
      }
    }
    if (!changed) break;
  }

  // Edges: direct nested acquisitions plus held-at-call x callee closure.
  std::vector<LockEdge> edges;
  for (const auto& [fn, f] : facts) {
    findings.insert(findings.end(), f.self_findings.begin(),
                    f.self_findings.end());
    findings.insert(findings.end(), f.guard_findings.begin(),
                    f.guard_findings.end());
    edges.insert(edges.end(), f.edges.begin(), f.edges.end());
    for (const CallSite& call : f.calls) {
      for (const FunctionInfo* target : FindFunctionDefs(
               idx, call.callee, call.receiver_class, fn->class_name)) {
        auto it = closure.find(target->qualified_name);
        if (it == closure.end()) continue;
        for (const std::string& held : call.held) {
          for (const std::string& acq : it->second) {
            if (held == acq) {
              findings.push_back(AnalyzeFinding{
                  fn->file, call.line, "lock-order",
                  "self-deadlock: call to " + call.callee +
                      "() re-acquires held lock '" + held + "'"});
            } else {
              edges.push_back(
                  LockEdge{held, acq, fn->file, call.line});
            }
          }
        }
      }
    }
  }

  // Cycle detection over the edge graph.
  std::map<std::string, std::map<std::string, const LockEdge*>> graph;
  for (const LockEdge& e : edges) {
    auto& slot = graph[e.from];
    if (slot.count(e.to) == 0) slot[e.to] = &e;
  }
  std::set<std::string> reported;  // canonical cycle signatures
  for (const auto& [start, _] : graph) {
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          auto it = graph.find(node);
          if (it == graph.end()) return;
          for (const auto& [next, edge] : it->second) {
            if (next == start && path.size() >= 2) {
              // Canonicalize: rotate so the smallest key leads.
              std::vector<std::string> cyc = path;
              auto min_it = std::min_element(cyc.begin(), cyc.end());
              std::rotate(cyc.begin(), min_it, cyc.end());
              std::string sig;
              for (const std::string& k : cyc) sig += k + ";";
              if (reported.insert(sig).second) {
                std::string desc;
                for (const std::string& k : cyc) desc += k + " -> ";
                desc += cyc.front();
                findings.push_back(AnalyzeFinding{
                    edge->file, edge->line, "lock-order",
                    "lock-order cycle: " + desc});
              }
              continue;
            }
            if (on_path.count(next) != 0) continue;
            if (path.size() > 8) continue;
            path.push_back(next);
            on_path.insert(next);
            dfs(next);
            on_path.erase(next);
            path.pop_back();
          }
        };
    dfs(start);
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Lifetime pass
// ---------------------------------------------------------------------------

enum class Backing { kNone, kMember, kParam, kLocal };

Backing WorseBacking(Backing a, Backing b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

const char* BackingName(Backing b) {
  switch (b) {
    case Backing::kMember:
      return "receiver-owned memory";
    case Backing::kParam:
      return "caller-owned memory";
    case Backing::kLocal:
      return "function-local memory";
    default:
      return "unknown memory";
  }
}

struct LifetimeEngine {
  const RepoIndex& idx;
  const FileIndex& file;
  const FunctionInfo& fn;
  FnContext ctx;
  std::map<std::string, Backing> borrowed;  // view chain key -> backing
  std::map<std::string, Backing> holders;   // reader-object local -> backing
  std::vector<AnalyzeFinding>* findings;

  LifetimeEngine(const RepoIndex& i, const FileIndex& f,
                 const FunctionInfo& func, std::vector<AnalyzeFinding>* out)
      : idx(i), file(f), fn(func), findings(out) {
    ctx.file = &f;
    ctx.fn = &func;
    CollectLocalDecls(f.tokens, func.body_begin, func.body_end, &ctx);
    for (const ParamInfo& p : func.params) {
      if (IsViewType(p.type_head) && !p.name.empty())
        borrowed[p.name] = Backing::kParam;
    }
  }

  void Report(size_t line, const std::string& message) {
    if (findings != nullptr) {
      findings->push_back(
          AnalyzeFinding{file.path, line, "view-escape", message});
    }
  }

  /// Lifetime category of the object a chain is rooted in.
  Backing BaseBacking(const std::vector<std::string>& comps) const {
    if (comps.empty()) return Backing::kNone;
    const std::string& head = comps[0];
    if (head == "this") return Backing::kMember;
    auto h = holders.find(head);
    if (h != holders.end()) return h->second;
    auto bv = borrowed.find(head);
    if (bv != borrowed.end()) return bv->second;
    if (ctx.locals.count(head) != 0) return Backing::kLocal;
    if (LookupParam(fn, head) != nullptr) return Backing::kParam;
    if (LookupField(idx, ctx.fn->class_name, head) != nullptr)
      return Backing::kMember;
    return Backing::kNone;
  }

  /// The lifetime backing of a view-producing expression in [b, e):
  /// borrowed-view calls inherit their receiver's backing, known view chains
  /// their recorded backing, owned-container chains the container's base.
  Backing ExprBacking(size_t b, size_t e) const {
    const std::vector<Token>& t = file.tokens;
    Backing worst = Backing::kNone;
    for (size_t i = b; i < e; ++i) {
      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      bool is_call = c.end < e && t[c.end].text == "(";
      Backing bk = Backing::kNone;
      if (is_call &&
          idx.borrowed_view_functions.count(c.LastUnqualified()) != 0) {
        if (c.comps.size() >= 2) {
          std::vector<std::string> recv(c.comps.begin(), c.comps.end() - 1);
          bk = BaseBacking(recv);
        } else {
          // Free function: the first view/owner argument is the source.
          size_t close = SkipBalanced(t, c.end, "(", ")", e);
          for (size_t k = c.end + 1; k < close - 1; ++k) {
            if (!StartsChain(t, k, c.end + 1)) continue;
            Chain arg = ReadChain(t, k, close - 1);
            Backing ab = ChainViewBacking(arg);
            if (ab != Backing::kNone) {
              bk = ab;
              break;
            }
            k = arg.end - 1;
          }
        }
      } else if (!is_call) {
        bk = ChainViewBacking(c);
      } else if (is_call && c.comps.size() >= 2) {
        // substr()/first()/subspan() etc. on a borrowed chain keep its
        // backing.
        std::vector<std::string> recv(c.comps.begin(), c.comps.end() - 1);
        Chain rc;
        rc.comps = recv;
        Backing rb = ChainViewBacking(rc);
        if (rb != Backing::kNone &&
            (c.LastUnqualified() == "substr" ||
             c.LastUnqualified() == "subspan" ||
             c.LastUnqualified() == "first" || c.LastUnqualified() == "last"))
          bk = rb;
      }
      worst = WorseBacking(worst, bk);
      i = c.end - 1;
    }
    return worst;
  }

  /// Backing for a chain when it denotes view-ish or owned storage; kNone
  /// for unrelated values (ints, bools, unresolved globals).
  Backing ChainViewBacking(const Chain& c) const {
    auto it = borrowed.find(c.Key());
    if (it != borrowed.end()) return it->second;
    // Prefix of a known borrowed aggregate? (rare; skip)
    const std::string& head = c.comps[0];
    if (c.comps.size() == 1) {
      auto lit = ctx.locals.find(head);
      if (lit != ctx.locals.end())
        return IsOwningContainer(lit->second.type_head) ? Backing::kLocal
                                                        : Backing::kNone;
      const ParamInfo* p = LookupParam(fn, head);
      if (p != nullptr)
        return IsOwningContainer(p->type_head) || IsViewType(p->type_head)
                   ? Backing::kParam
                   : Backing::kNone;
      const FieldInfo* f = LookupField(idx, ctx.fn->class_name, head);
      if (f != nullptr &&
          (IsViewType(f->type_head) || IsOwningContainer(f->type_head)))
        return Backing::kMember;
      return Backing::kNone;
    }
    const FieldInfo* f = ResolveField(idx, ctx, c.comps);
    if (f != nullptr &&
        (IsViewType(f->type_head) || IsOwningContainer(f->type_head)))
      return BaseBacking(c.comps);
    return Backing::kNone;
  }

  bool ReturnsView() const {
    // Whole-token match: "Result < std::vector < RealizationSpan > >" must
    // not count as a view return just because "Span" appears as a substring.
    std::istringstream in(fn.return_type);
    std::string tok;
    while (in >> tok) {
      if (tok == "string_view" || tok == "Span" || tok == "span") return true;
      size_t sep = tok.rfind("::");
      if (sep != std::string::npos) {
        std::string last = tok.substr(sep + 2);
        if (last == "string_view" || last == "Span" || last == "span")
          return true;
      }
    }
    return false;
  }

  void Run() {
    const std::vector<Token>& t = file.tokens;
    const size_t b = fn.body_begin, e = fn.body_end;
    for (size_t i = b; i < e; ++i) {
      const std::string& x = t[i].text;

      auto decl_it = ctx.decl_at.find(i);
      if (decl_it != ctx.decl_at.end()) {
        const LocalDecl& d = ctx.locals.at(decl_it->second);
        if (d.init_end > d.init_begin) {
          Backing bk = ExprBacking(d.init_begin, d.init_end);
          if (IsViewType(d.type_head)) {
            if (bk != Backing::kNone) borrowed[decl_it->second] = bk;
          } else if (d.is_ctor_call && bk != Backing::kNone &&
                     !IsOwningContainer(d.type_head) &&
                     !IsLockType(d.type_head)) {
            // Reader-style object constructed over a view: views it later
            // produces alias the same backing.
            holders[decl_it->second] = bk;
          }
        }
        continue;
      }

      if (x == "return" && IsIdent(t[i]) && ReturnsView()) {
        size_t j = i + 1;
        int depth = 0;
        for (; j < e; ++j) {
          const std::string& y = t[j].text;
          if (y == "(" || y == "[" || y == "{") ++depth;
          if (y == ")" || y == "]" || y == "}") --depth;
          if (y == ";" && depth <= 0) break;
        }
        if (ExprBacking(i + 1, j) == Backing::kLocal) {
          Report(t[i].line,
                 "view aliasing function-local memory returned to caller");
        }
        continue;
      }

      if (x == "=" && !IsIdent(t[i])) {
        HandleAssignAt(i);
        continue;
      }

      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      bool is_call = c.end < e && t[c.end].text == "(";
      if (is_call) {
        size_t close = SkipBalanced(t, c.end, "(", ")", e);
        const std::string callee = c.LastUnqualified();
        if (idx.borrowed_view_functions.count(callee) != 0) {
          // Out-params of a borrowed-view call inherit the owner's backing.
          Backing owner = Backing::kNone;
          if (c.comps.size() >= 2) {
            std::vector<std::string> recv(c.comps.begin(), c.comps.end() - 1);
            owner = BaseBacking(recv);
          } else {
            for (size_t k = c.end + 1; k < close - 1; ++k) {
              if (!StartsChain(t, k, c.end + 1)) continue;
              Chain arg = ReadChain(t, k, close - 1);
              Backing ab = ChainViewBacking(arg);
              if (ab != Backing::kNone) {
                owner = ab;
                break;
              }
              k = arg.end - 1;
            }
          }
          if (owner != Backing::kNone) {
            int depth = 0;
            for (size_t k = c.end + 1; k + 1 < close; ++k) {
              const std::string& y = t[k].text;
              if (y == "(" || y == "[" || y == "{") ++depth;
              if (y == ")" || y == "]" || y == "}") --depth;
              if (depth != 0 || y != "&") continue;
              bool arg_start =
                  t[k - 1].text == "(" || t[k - 1].text == ",";
              if (arg_start && k + 1 < close && IsIdent(t[k + 1])) {
                Chain out = ReadChain(t, k + 1, close);
                borrowed[out.Key()] = owner;
              }
            }
          }
        }
        if (IsDeferredCallee(callee)) {
          // A lambda inside the argument list: any borrowed view it names
          // may dangle by the time the deferred work runs.
          for (size_t k = c.end + 1; k < close; ++k) {
            if (t[k].text != "[") continue;
            size_t lam_end = FindLambdaEnd(k, close);
            for (const auto& [key, backing] : borrowed) {
              if (backing == Backing::kNone) continue;
              if (ChainOccursIn(k, lam_end, key)) {
                Report(t[i].line,
                       "view '" + key + "' aliasing " +
                           std::string(BackingName(backing)) +
                           " captured by deferred work (" + callee + ")");
              }
            }
            k = lam_end - 1;
          }
        }
        i = c.end - 1;
        continue;
      }
      i = c.end - 1;
    }
  }

  /// k points at the '[' of a lambda introducer; returns one past the
  /// closing '}' of its body (or `limit`).
  size_t FindLambdaEnd(size_t k, size_t limit) const {
    const std::vector<Token>& t = file.tokens;
    size_t j = SkipBalanced(t, k, "[", "]", limit);
    if (j < limit && t[j].text == "(") j = SkipBalanced(t, j, "(", ")", limit);
    while (j < limit && t[j].text != "{" && t[j].text != "," &&
           t[j].text != ")")
      ++j;
    if (j < limit && t[j].text == "{")
      return SkipBalanced(t, j, "{", "}", limit);
    return j;
  }

  bool ChainOccursIn(size_t b, size_t e, const std::string& key) const {
    const std::vector<Token>& t = file.tokens;
    for (size_t i = b; i < e; ++i) {
      if (!StartsChain(t, i, b)) continue;
      Chain c = ReadChain(t, i, e);
      if (c.Key() == key) return true;
      i = c.end - 1;
    }
    return false;
  }

  void HandleAssignAt(size_t eq) {
    const std::vector<Token>& t = file.tokens;
    const size_t b = fn.body_begin, e = fn.body_end;
    if (eq == b || !IsIdent(t[eq - 1])) return;
    size_t s = eq - 1;
    while (s > b && (t[s - 1].text == "." || t[s - 1].text == "->" ||
                     t[s - 1].text == "::")) {
      if (s >= 2 && IsIdent(t[s - 2]))
        s -= 2;
      else
        break;
    }
    bool deref = s > b && t[s - 1].text == "*";
    Chain lhs = ReadChain(t, s, eq);
    size_t re = eq + 1;
    int depth = 0;
    for (; re < e; ++re) {
      const std::string& y = t[re].text;
      if (y == "(" || y == "[" || y == "{") ++depth;
      if (y == ")" || y == "]" || y == "}") --depth;
      if (depth < 0 || (y == ";" && depth == 0)) break;
    }
    Backing bk = ExprBacking(eq + 1, re);

    // Out-param write: `*out = view-of-local`.
    if (deref && lhs.comps.size() == 1) {
      const ParamInfo* p = LookupParam(fn, lhs.comps[0]);
      if (p != nullptr && IsViewType(p->type_head) &&
          bk == Backing::kLocal) {
        Report(t[eq].line,
               "view aliasing function-local memory written through "
               "out-parameter '" +
                   lhs.comps[0] + "'");
        return;
      }
    }

    // Member store: `view_member_ = short-lived view`.
    bool bare_member =
        !deref && (lhs.comps[0] == "this" ||
                   (ctx.locals.count(lhs.comps[0]) == 0 &&
                    LookupParam(fn, lhs.comps[0]) == nullptr));
    if (bare_member) {
      std::vector<std::string> comps = lhs.comps;
      if (comps[0] == "this") comps.erase(comps.begin());
      if (!comps.empty()) {
        const FieldInfo* f = ResolveField(idx, ctx, comps);
        if (f != nullptr && IsViewType(f->type_head) &&
            bk == Backing::kLocal) {
          Report(t[eq].line, "view aliasing function-local memory stored in "
                             "member '" +
                                 f->class_name + "::" + f->name + "'");
          return;
        }
      }
    }

    // Track reassignment of view locals.
    if (!deref && lhs.comps.size() == 1 && borrowed.count(lhs.Key()) != 0) {
      if (bk != Backing::kNone)
        borrowed[lhs.Key()] = bk;
      else
        borrowed.erase(lhs.Key());
    }
  }
};

std::vector<AnalyzeFinding> LifetimePassImpl(const RepoIndex& idx) {
  std::vector<AnalyzeFinding> findings;
  for (const FileIndex& file : idx.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.is_definition) continue;
      LifetimeEngine engine(idx, file, fn, &findings);
      engine.Run();
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Suppressions / driver
// ---------------------------------------------------------------------------

bool KnownRule(const std::string& rule) {
  return rule == "tainted-size" || rule == "lock-order" ||
         rule == "unguarded-access" || rule == "view-escape" ||
         rule == "bad-suppression";
}

void SortAndDedupe(std::vector<AnalyzeFinding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const AnalyzeFinding& a, const AnalyzeFinding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings->erase(
      std::unique(findings->begin(), findings->end(),
                  [](const AnalyzeFinding& a, const AnalyzeFinding& b) {
                    return a.path == b.path && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      findings->end());
}

}  // namespace

std::string AnalyzeFinding::ToString() const {
  std::ostringstream os;
  os << path << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::vector<AnalyzeFinding> RunTaintPass(const RepoIndex& index) {
  std::vector<AnalyzeFinding> f = TaintPassImpl(index);
  SortAndDedupe(&f);
  return f;
}

std::vector<AnalyzeFinding> RunLockPass(const RepoIndex& index) {
  std::vector<AnalyzeFinding> f = LockPassImpl(index);
  SortAndDedupe(&f);
  return f;
}

std::vector<AnalyzeFinding> RunLifetimePass(const RepoIndex& index) {
  std::vector<AnalyzeFinding> f = LifetimePassImpl(index);
  SortAndDedupe(&f);
  return f;
}

std::vector<AnalyzeFinding> RunAllPasses(const RepoIndex& index) {
  std::vector<AnalyzeFinding> all = TaintPassImpl(index);
  {
    std::vector<AnalyzeFinding> f = LockPassImpl(index);
    all.insert(all.end(), f.begin(), f.end());
    f = LifetimePassImpl(index);
    all.insert(all.end(), f.begin(), f.end());
  }

  // Apply suppressions: `// wican:allow(<rule>)` on the finding's line or
  // the line directly above it.
  std::map<std::string, const FileIndex*> by_path;
  for (const FileIndex& file : index.files) by_path[file.path] = &file;
  std::vector<AnalyzeFinding> kept;
  for (AnalyzeFinding& f : all) {
    bool suppressed = false;
    auto it = by_path.find(f.path);
    if (it != by_path.end()) {
      for (const Suppression& s : it->second->suppressions) {
        if (s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line)) {
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }

  // Suppression hygiene: unknown rule names or missing justifications are
  // findings themselves (and cannot be suppressed away).
  for (const FileIndex& file : index.files) {
    for (const Suppression& s : file.suppressions) {
      if (!KnownRule(s.rule)) {
        kept.push_back(AnalyzeFinding{
            file.path, s.line, "bad-suppression",
            "wican:allow names unknown rule '" + s.rule + "'"});
      } else if (s.justification.size() < 10) {
        kept.push_back(AnalyzeFinding{
            file.path, s.line, "bad-suppression",
            "wican:allow(" + s.rule +
                ") needs a justification (>= 10 chars after the colon)"});
      }
    }
  }
  SortAndDedupe(&kept);
  return kept;
}

}  // namespace analyze
}  // namespace wiclean
