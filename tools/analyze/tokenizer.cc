#include "tokenizer.h"

#include <cctype>

namespace wiclean {
namespace analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators, longest first within each leading character
/// so a linear prefix scan is maximal-munch.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  ".*",
};

/// Phase-2 view of the source: line splices removed, with a physical line
/// number per remaining character. Raw string literals are exempt from
/// splicing in real C++; for an analyzer the approximation of splicing
/// everywhere is acceptable (tested fixtures never put a backslash-newline
/// inside a raw string).
struct Spliced {
  std::string code;
  std::vector<size_t> line;  // line[i] = 1-based physical line of code[i]
};

Spliced SpliceLines(std::string_view content) {
  Spliced out;
  out.code.reserve(content.size());
  out.line.reserve(content.size());
  size_t line = 1;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\\') {
      // Backslash followed by (optionally CR then) LF is a splice.
      size_t j = i + 1;
      if (j < content.size() && content[j] == '\r') ++j;
      if (j < content.size() && content[j] == '\n') {
        ++line;
        i = j;  // skip the splice entirely
        continue;
      }
    }
    out.code.push_back(c);
    out.line.push_back(line);
    if (c == '\n') ++line;
  }
  return out;
}

}  // namespace

TokenizedFile Tokenize(std::string_view content) {
  Spliced sp = SpliceLines(content);
  const std::string& code = sp.code;
  TokenizedFile out;

  size_t i = 0;
  bool at_line_start = true;   // only whitespace seen on this logical line
  bool in_directive = false;   // between a line-start '#' and end of line

  auto line_at = [&](size_t pos) -> size_t {
    if (sp.line.empty()) return 1;
    if (pos >= sp.line.size()) return sp.line.back();
    return sp.line[pos];
  };
  auto push = [&](TokKind kind, std::string text, size_t pos) {
    out.tokens.push_back(Token{kind, std::move(text), line_at(pos),
                               in_directive});
  };

  while (i < code.size()) {
    char c = code[i];
    if (c == '\n') {
      at_line_start = true;
      in_directive = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < code.size() && code[i + 1] == '/') {
      size_t start = i + 2;
      size_t end = code.find('\n', start);
      if (end == std::string::npos) end = code.size();
      out.comments.push_back(Comment{line_at(i),
                                     code.substr(start, end - start)});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < code.size() && code[i + 1] == '*') {
      size_t start = i + 2;
      size_t end = code.find("*/", start);
      size_t close = end == std::string::npos ? code.size() : end;
      out.comments.push_back(Comment{line_at(i),
                                     code.substr(start, close - start)});
      i = end == std::string::npos ? code.size() : end + 2;
      continue;
    }

    // Preprocessor directive start.
    if (c == '#' && at_line_start) {
      in_directive = true;
      at_line_start = false;
      push(TokKind::kPunct, "#", i);
      ++i;
      continue;
    }
    at_line_start = false;

    // Raw string literal: optional encoding prefix, then R"delim( ... )delim".
    if (IsIdentStart(c)) {
      // Check for a raw-string head before consuming a plain identifier.
      size_t p = i;
      while (p < code.size() && IsIdentChar(code[p])) ++p;
      std::string_view word(code.data() + i, p - i);
      bool raw_head =
          p < code.size() && code[p] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR");
      if (raw_head) {
        size_t q = p + 1;  // past the opening quote
        std::string delim;
        while (q < code.size() && code[q] != '(' && code[q] != '"' &&
               code[q] != '\n' && delim.size() < 16) {
          delim.push_back(code[q++]);
        }
        if (q < code.size() && code[q] == '(') {
          ++q;
          std::string closer = ")" + delim + "\"";
          size_t end = code.find(closer, q);
          size_t stop = end == std::string::npos ? code.size() : end;
          push(TokKind::kString, code.substr(q, stop - q), i);
          i = end == std::string::npos ? code.size() : end + closer.size();
          continue;
        }
        // Malformed raw head; fall through and treat as identifier.
      }
      push(TokKind::kIdent, code.substr(i, p - i), i);
      i = p;
      continue;
    }

    // Ordinary string literal (a bare '"' here; prefixed ones had an
    // identifier head handled above only for the raw R forms — u"x" style
    // prefixes tokenize as ident + string, which is fine for analysis).
    if (c == '"') {
      size_t p = i + 1;
      std::string text;
      while (p < code.size() && code[p] != '"' && code[p] != '\n') {
        if (code[p] == '\\' && p + 1 < code.size()) {
          text.push_back(code[p]);
          text.push_back(code[p + 1]);
          p += 2;
          continue;
        }
        text.push_back(code[p++]);
      }
      push(TokKind::kString, std::move(text), i);
      i = p < code.size() && code[p] == '"' ? p + 1 : p;
      continue;
    }

    // Character literal.
    if (c == '\'') {
      size_t p = i + 1;
      std::string text;
      while (p < code.size() && code[p] != '\'' && code[p] != '\n') {
        if (code[p] == '\\' && p + 1 < code.size()) {
          text.push_back(code[p]);
          text.push_back(code[p + 1]);
          p += 2;
          continue;
        }
        text.push_back(code[p++]);
      }
      push(TokKind::kChar, std::move(text), i);
      i = p < code.size() && code[p] == '\'' ? p + 1 : p;
      continue;
    }

    // Number: digit, or '.' followed by digit. Consumes suffixes, hex,
    // exponents (with signs) and digit separators.
    if (IsDigit(c) || (c == '.' && i + 1 < code.size() && IsDigit(code[i + 1]))) {
      size_t p = i;
      while (p < code.size()) {
        char d = code[p];
        if (IsIdentChar(d) || d == '.') {
          ++p;
          // Exponent sign: e+, e-, p+, p- continue the literal.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              p < code.size() && (code[p] == '+' || code[p] == '-')) {
            ++p;
          }
          continue;
        }
        if (d == '\'' && p + 1 < code.size() && IsIdentChar(code[p + 1])) {
          ++p;  // digit separator
          continue;
        }
        break;
      }
      push(TokKind::kNumber, code.substr(i, p - i), i);
      i = p;
      continue;
    }

    // Punctuation, maximal munch.
    std::string_view rest(code.data() + i, code.size() - i);
    std::string_view matched;
    for (std::string_view p : kPuncts) {
      if (rest.size() >= p.size() && rest.substr(0, p.size()) == p) {
        matched = p;
        break;
      }
    }
    if (!matched.empty()) {
      push(TokKind::kPunct, std::string(matched), i);
      i += matched.size();
    } else {
      push(TokKind::kPunct, std::string(1, c), i);
      ++i;
    }
  }
  return out;
}

}  // namespace analyze
}  // namespace wiclean
