// Tests for the wican front end (tokenizer + indexer) and the three passes
// over the seeded-defect fixture corpus in testdata/. Every "bad" fixture
// must produce its expected findings and every "good" control must be clean
// — this is the proof that a zero-finding run over src/ means the passes
// looked and found nothing, not that they looked at nothing.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "index.h"
#include "passes.h"
#include "tokenizer.h"

namespace wiclean {
namespace analyze {
namespace {

std::string ReadFixture(const std::string& name) {
  std::ifstream in(std::string(WICAN_TESTDATA) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

RepoIndex IndexFixtures(const std::vector<std::string>& names) {
  std::vector<FileIndex> files;
  for (const std::string& name : names) {
    files.push_back(IndexFile(name, ReadFixture(name)));
  }
  return BuildRepoIndex(std::move(files));
}

size_t CountRule(const std::vector<AnalyzeFinding>& findings,
                 const std::string& rule) {
  size_t n = 0;
  for (const AnalyzeFinding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string Render(const std::vector<AnalyzeFinding>& findings) {
  std::string out;
  for (const AnalyzeFinding& f : findings) out += f.ToString() + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

std::vector<std::string> Texts(const TokenizedFile& tf) {
  std::vector<std::string> out;
  for (const Token& t : tf.tokens) out.push_back(t.text);
  return out;
}

TEST(Tokenizer, RawStringWithTrickyContents) {
  TokenizedFile tf =
      Tokenize("auto s = R\"delim(a \"quoted\" )notdelim\" x)delim\";");
  ASSERT_EQ(tf.tokens.size(), 5u);  // auto s = <string> ;
  EXPECT_EQ(tf.tokens[3].kind, TokKind::kString);
  EXPECT_EQ(tf.tokens[3].text, "a \"quoted\" )notdelim\" x");
}

TEST(Tokenizer, LineSplicePreservesPhysicalLines) {
  // The spliced identifier is one token; the token after the splice reports
  // the line where the statement *started* (splices vanish before lexing).
  TokenizedFile tf = Tokenize("int ab\\\ncd = 3;\nint next;");
  std::vector<std::string> texts = Texts(tf);
  ASSERT_GE(texts.size(), 4u);
  EXPECT_EQ(texts[1], "abcd");
  // `next` is on physical line 3.
  EXPECT_EQ(tf.tokens[texts.size() - 2].text, "next");
  EXPECT_EQ(tf.tokens[texts.size() - 2].line, 3u);
}

TEST(Tokenizer, DirectiveTokensAreFlagged) {
  TokenizedFile tf = Tokenize("#define FOO 1\nint x = FOO;");
  bool saw_directive_foo = false, saw_code_foo = false;
  for (const Token& t : tf.tokens) {
    if (t.text == "FOO") {
      (t.in_directive ? saw_directive_foo : saw_code_foo) = true;
    }
  }
  EXPECT_TRUE(saw_directive_foo);
  EXPECT_TRUE(saw_code_foo);
}

TEST(Tokenizer, SplicedDirectiveStaysDirective) {
  // A #define continued with a backslash-newline is one logical directive.
  TokenizedFile tf = Tokenize("#define M(x) \\\n  ((x) + 1)\nint y;");
  for (const Token& t : tf.tokens) {
    if (t.text == "y" || t.text == "int") {
      EXPECT_FALSE(t.in_directive) << t.text;
    }
    if (t.text == "M" || t.text == "1") {
      EXPECT_TRUE(t.in_directive) << t.text;
    }
  }
}

TEST(Tokenizer, MaximalMunchAndDigitSeparators) {
  TokenizedFile tf = Tokenize("a <<= b >> c <=> 1'000'000 + 0x1p-3;");
  std::vector<std::string> texts = Texts(tf);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<<="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), ">>"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<=>"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "1'000'000"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "0x1p-3"), texts.end());
}

TEST(Tokenizer, CommentsCapturedNotTokenized) {
  TokenizedFile tf =
      Tokenize("int a; // wican:allow(x): y\n/* block */ int b;");
  ASSERT_EQ(tf.comments.size(), 2u);
  EXPECT_EQ(tf.comments[0].line, 1u);
  EXPECT_NE(tf.comments[0].text.find("wican:allow"), std::string::npos);
  for (const Token& t : tf.tokens) {
    EXPECT_EQ(t.text.find("wican"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Indexer
// ---------------------------------------------------------------------------

TEST(Index, FunctionSummariesAndAnnotations) {
  const char* src =
      "struct Reader {\n"
      "  Status ReadCount(uint64_t* v) WC_UNTRUSTED;\n"
      "  std::string_view Body() const WC_BORROWED_VIEW { return b_; }\n"
      "  void Drain() WC_REQUIRES(mu_);\n"
      "  std::string_view b_;\n"
      "  Mutex mu_;\n"
      "};\n"
      "void Reader::Drain() {}\n";
  RepoIndex idx = BuildRepoIndex({IndexFile("r.h", src)});
  EXPECT_EQ(idx.untrusted_functions.count("ReadCount"), 1u);
  EXPECT_EQ(idx.borrowed_view_functions.count("Body"), 1u);

  const FileIndex& f = idx.files[0];
  ASSERT_GE(f.functions.size(), 4u);
  const FunctionInfo* drain_def = nullptr;
  for (const FunctionInfo& fn : f.functions) {
    if (fn.name == "Drain" && !fn.is_definition) {
      ASSERT_EQ(fn.requires_locks.size(), 1u);
      EXPECT_EQ(fn.requires_locks[0], "mu_");
    }
    if (fn.name == "Drain" && fn.is_definition) drain_def = &fn;
    if (fn.name == "ReadCount") {
      EXPECT_EQ(fn.class_name, "Reader");
      ASSERT_EQ(fn.params.size(), 1u);
      EXPECT_EQ(fn.params[0].type_head, "uint64_t");
      EXPECT_EQ(fn.params[0].name, "v");
    }
  }
  // Out-of-class definition resolves its class from the qualifier.
  ASSERT_NE(drain_def, nullptr);
  EXPECT_EQ(drain_def->class_name, "Reader");
  EXPECT_EQ(drain_def->qualified_name, "Reader::Drain");
}

TEST(Index, FieldsWithGuardsAndTaint) {
  const char* src =
      "struct Q {\n"
      "  Mutex mu;\n"
      "  std::deque<std::function<void()>> items WC_GUARDED_BY(mu);\n"
      "  uint64_t declared WC_UNTRUSTED;\n"
      "};\n";
  RepoIndex idx = BuildRepoIndex({IndexFile("q.h", src)});
  const auto& fields = idx.fields_by_class.at("Q");
  EXPECT_EQ(fields.at("items").guarded_by, "mu");
  EXPECT_EQ(fields.at("items").type_head, "deque");
  EXPECT_TRUE(fields.at("declared").untrusted);
  EXPECT_EQ(fields.at("mu").type_head, "Mutex");
}

TEST(Index, NestedTemplatesAndDoubleAngle) {
  // `>>` must close two template levels; the field after it must parse.
  const char* src =
      "struct S {\n"
      "  std::map<std::string, std::vector<int>> table;\n"
      "  int after;\n"
      "};\n";
  RepoIndex idx = BuildRepoIndex({IndexFile("s.h", src)});
  const auto& fields = idx.fields_by_class.at("S");
  EXPECT_EQ(fields.at("table").type_head, "map");
  EXPECT_EQ(fields.at("after").type_head, "int");
}

TEST(Index, DeterministicAcrossFileOrderings) {
  std::vector<std::string> names = {
      "taint_bad_resize.cc",   "taint_bad_loop.cc",  "taint_bad_memcpy.cc",
      "taint_bad_alloc.cc",    "taint_good_gated.cc", "lock_bad_cycle_a.cc",
      "lock_bad_cycle_b.cc",   "lock_bad_self.cc",   "lock_bad_unguarded.cc",
      "lock_good.cc",          "view_bad_member.cc", "view_bad_return.cc",
      "view_bad_capture.cc",   "view_good.cc",       "suppress_ok.cc",
      "suppress_bad.cc",       "lock_bad_morsel_counter.cc",
      "lock_bad_epoch_refcount.cc",
  };
  std::string forward = DebugSummary(IndexFixtures(names));
  std::vector<std::string> reversed(names.rbegin(), names.rend());
  std::string backward = DebugSummary(IndexFixtures(reversed));
  EXPECT_EQ(forward, backward);

  // A rotation (neither sorted nor reversed) must also agree.
  std::vector<std::string> rotated(names.begin() + 7, names.end());
  rotated.insert(rotated.end(), names.begin(), names.begin() + 7);
  EXPECT_EQ(forward, DebugSummary(IndexFixtures(rotated)));
}

// ---------------------------------------------------------------------------
// Taint pass
// ---------------------------------------------------------------------------

TEST(TaintPass, FlagsUngatedResizeAndReserve) {
  auto f = RunAllPasses(IndexFixtures({"taint_bad_resize.cc"}));
  EXPECT_EQ(CountRule(f, "tainted-size"), 2u) << Render(f);
}

TEST(TaintPass, FlagsUngatedLoopBounds) {
  auto f = RunAllPasses(IndexFixtures({"taint_bad_loop.cc"}));
  EXPECT_EQ(CountRule(f, "tainted-size"), 2u) << Render(f);
}

TEST(TaintPass, FlagsMemcpyLengthAndArrayIndex) {
  auto f = RunAllPasses(IndexFixtures({"taint_bad_memcpy.cc"}));
  EXPECT_EQ(CountRule(f, "tainted-size"), 2u) << Render(f);
}

TEST(TaintPass, FlagsSizedConstructionParamAndFieldSources) {
  auto f = RunAllPasses(IndexFixtures({"taint_bad_alloc.cc"}));
  EXPECT_EQ(CountRule(f, "tainted-size"), 3u) << Render(f);
}

TEST(TaintPass, GatedControlIsClean) {
  auto f = RunAllPasses(IndexFixtures({"taint_good_gated.cc"}));
  EXPECT_EQ(f.size(), 0u) << Render(f);
}

// ---------------------------------------------------------------------------
// Lock pass
// ---------------------------------------------------------------------------

TEST(LockPass, CrossFileCycleNeedsBothFiles) {
  // Each half alone is clean: the inversion only exists in the merged graph.
  auto a = RunAllPasses(IndexFixtures({"lock_bad_cycle_a.cc"}));
  EXPECT_EQ(CountRule(a, "lock-order"), 0u) << Render(a);
  auto b = RunAllPasses(IndexFixtures({"lock_bad_cycle_b.cc"}));
  EXPECT_EQ(CountRule(b, "lock-order"), 0u) << Render(b);

  auto both = RunAllPasses(
      IndexFixtures({"lock_bad_cycle_a.cc", "lock_bad_cycle_b.cc"}));
  ASSERT_EQ(CountRule(both, "lock-order"), 1u) << Render(both);
  for (const AnalyzeFinding& f : both) {
    if (f.rule == "lock-order") {
      EXPECT_NE(f.message.find("cycle"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("Pair::a"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("Pair::b"), std::string::npos) << f.message;
    }
  }
}

TEST(LockPass, FlagsDirectAndThroughCalleeRelock) {
  auto f = RunAllPasses(IndexFixtures({"lock_bad_self.cc"}));
  EXPECT_EQ(CountRule(f, "lock-order"), 2u) << Render(f);
}

TEST(LockPass, FlagsUnguardedAccess) {
  auto f = RunAllPasses(IndexFixtures({"lock_bad_unguarded.cc"}));
  EXPECT_EQ(CountRule(f, "unguarded-access"), 2u) << Render(f);
}

TEST(LockPass, FlagsUnguardedMorselClaimCursor) {
  // Seeded-defect twin of relational::MorselScheduler (see
  // src/relational/morsel.h): the WC_GUARDED_BY claim cursor is read and
  // bumped with no lock in Next(), and read after the MutexLock scope closed
  // in Remaining(). The guarded access inside the MutexLock scope must stay
  // clean.
  auto f = RunAllPasses(IndexFixtures({"lock_bad_morsel_counter.cc"}));
  EXPECT_EQ(CountRule(f, "unguarded-access"), 3u) << Render(f);
}

TEST(LockPass, FlagsUnguardedEpochRefcount) {
  // Seeded-defect twin of serve::SnapshotRegistry (see
  // src/serve/snapshot_registry.h): the pin refcount is bumped lock-free in
  // Acquire(), the current-epoch cursor is read outside the lock in both
  // Acquire() and Publish(), and the refcount is decremented after the
  // MutexLock scope closed in Release(). Guarded accesses inside the lock
  // scopes and the unannotated published counter must stay clean.
  auto f = RunAllPasses(IndexFixtures({"lock_bad_epoch_refcount.cc"}));
  EXPECT_EQ(CountRule(f, "unguarded-access"), 4u) << Render(f);
}

TEST(LockPass, CleanControlHasNoFindings) {
  auto f = RunAllPasses(IndexFixtures({"lock_good.cc"}));
  EXPECT_EQ(f.size(), 0u) << Render(f);
}

// ---------------------------------------------------------------------------
// Lifetime pass
// ---------------------------------------------------------------------------

TEST(LifetimePass, FlagsMemberStoreOfLocalView) {
  auto f = RunAllPasses(IndexFixtures({"view_bad_member.cc"}));
  EXPECT_EQ(CountRule(f, "view-escape"), 1u) << Render(f);
}

TEST(LifetimePass, FlagsReturnAndOutParamEscape) {
  auto f = RunAllPasses(IndexFixtures({"view_bad_return.cc"}));
  EXPECT_EQ(CountRule(f, "view-escape"), 2u) << Render(f);
}

TEST(LifetimePass, FlagsDeferredCapture) {
  auto f = RunAllPasses(IndexFixtures({"view_bad_capture.cc"}));
  EXPECT_EQ(CountRule(f, "view-escape"), 1u) << Render(f);
}

TEST(LifetimePass, CleanControlHasNoFindings) {
  auto f = RunAllPasses(IndexFixtures({"view_good.cc"}));
  EXPECT_EQ(f.size(), 0u) << Render(f);
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(Suppressions, JustifiedAllowSilencesFinding) {
  auto f = RunAllPasses(IndexFixtures({"suppress_ok.cc"}));
  EXPECT_EQ(f.size(), 0u) << Render(f);
}

TEST(Suppressions, HygieneViolationsAreFindings) {
  auto f = RunAllPasses(IndexFixtures({"suppress_bad.cc"}));
  EXPECT_EQ(CountRule(f, "bad-suppression"), 3u) << Render(f);
  // The underlying findings stay suppressed — hygiene is its own rule.
  EXPECT_EQ(CountRule(f, "tainted-size"), 0u) << Render(f);
}

}  // namespace
}  // namespace analyze
}  // namespace wiclean
