#include "index.h"

#include <algorithm>
#include <sstream>

namespace wiclean {
namespace analyze {
namespace {

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }

/// WC_* names are annotation macros (src/common/annotations.h), never
/// functions or declarator names.
bool IsAnnotationMacro(const std::string& s) { return StartsWith(s, "WC_"); }

/// Identifiers that can precede a '(' without being a function name.
bool IsNonFunctionName(const std::string& s) {
  static const std::set<std::string> kSet = {
      "if",          "for",         "while",       "switch",
      "return",      "sizeof",      "alignof",     "alignas",
      "decltype",    "noexcept",    "catch",       "new",
      "delete",      "throw",       "static_cast", "dynamic_cast",
      "reinterpret_cast", "const_cast", "int",     "char",
      "void",        "bool",        "float",       "double",
      "long",        "short",       "unsigned",    "signed",
      "auto",        "defined",     "static_assert", "assert",
      "requires",    "co_return",   "co_await",
  };
  return kSet.count(s) != 0;
}

/// Declaration-specifier words excluded from type-head resolution.
bool IsSpecifierWord(const std::string& s) {
  static const std::set<std::string> kSet = {
      "const",    "volatile", "mutable", "static",  "constexpr", "inline",
      "virtual",  "explicit", "friend",  "extern",  "struct",    "class",
      "enum",     "typename", "union",   "register", "thread_local",
  };
  return kSet.count(s) != 0;
}

/// t[i] must be `open`; returns the index just past the matching `close`
/// (or t.size() when unbalanced).
size_t SkipBalanced(const std::vector<Token>& t, size_t i,
                    std::string_view open, std::string_view close) {
  int depth = 0;
  for (size_t n = t.size(); i < n; ++i) {
    if (t[i].text == open) {
      ++depth;
    } else if (t[i].text == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return t.size();
}

/// Template-argument angle matcher going backward: k points at a '>' (or
/// '>>'); returns the index of the matching '<', or npos.
size_t MatchAngleBackward(const std::vector<Token>& t, size_t k) {
  int depth = 0;
  for (size_t i = k + 1; i-- > 0;) {
    const std::string& x = t[i].text;
    if (x == ">")
      ++depth;
    else if (x == ">>")
      depth += 2;
    else if (x == "<") {
      if (--depth == 0) return i;
    } else if (x == "<<") {
      depth -= 2;
      if (depth <= 0) return i;
    }
    if (i == 0) break;
  }
  return std::string::npos;
}

/// Skips a `template <...>` header; i points at "template".
size_t SkipTemplateHeader(const std::vector<Token>& t, size_t i) {
  ++i;
  if (i >= t.size() || t[i].text != "<") return i;
  int depth = 0;
  for (size_t n = t.size(); i < n; ++i) {
    const std::string& x = t[i].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return i + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (x == "(") {
      i = SkipBalanced(t, i, "(", ")") - 1;
    }
  }
  return t.size();
}

/// Skips to the ';' ending this statement, balancing (), {}, [].
size_t SkipToSemi(const std::vector<Token>& t, size_t i) {
  int paren = 0, brace = 0, brack = 0;
  for (size_t n = t.size(); i < n; ++i) {
    const std::string& x = t[i].text;
    if (x == "(")
      ++paren;
    else if (x == ")")
      --paren;
    else if (x == "{")
      ++brace;
    else if (x == "}")
      --brace;
    else if (x == "[")
      ++brack;
    else if (x == "]")
      --brack;
    else if (x == ";" && paren <= 0 && brace <= 0 && brack <= 0)
      return i + 1;
  }
  return t.size();
}

struct Scope {
  enum Kind { kNamespace, kClass, kBlock };
  Kind kind;
  std::string name;
};

std::string InnermostClass(const std::vector<Scope>& scopes) {
  for (size_t i = scopes.size(); i-- > 0;) {
    if (scopes[i].kind == Scope::kBlock) continue;
    if (scopes[i].kind == Scope::kClass) return scopes[i].name;
    return "";  // hit a namespace first
  }
  return "";
}

std::string JoinScopeNames(const std::vector<Scope>& scopes) {
  std::string out;
  for (const Scope& s : scopes) {
    if (s.kind == Scope::kBlock || s.name.empty()) continue;
    if (!out.empty()) out += "::";
    out += s.name;
  }
  return out;
}

/// Joins WC_REQUIRES-style macro arguments on top-level commas.
std::vector<std::string> SplitMacroArgs(const std::vector<Token>& t,
                                        size_t open, size_t close) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (x == "," && depth == 0) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += x;
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(b, e - b + 1));
}

void ParseSuppressions(FileIndex* out) {
  constexpr std::string_view kTag = "wican:allow(";
  for (const Comment& c : out->comments) {
    size_t pos = 0;
    while ((pos = c.text.find(kTag, pos)) != std::string::npos) {
      size_t rb = pos + kTag.size();
      size_t re = c.text.find(')', rb);
      if (re == std::string::npos) break;
      Suppression s;
      s.line = c.line;
      s.rule = Trim(c.text.substr(rb, re - rb));
      // Prose that mentions the syntax (e.g. "wican:allow(<rule>)" in a doc
      // comment) is not a suppression: real rule names are kebab-case.
      bool rule_shaped = !s.rule.empty();
      for (char ch : s.rule) {
        if (!((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
              ch == '-'))
          rule_shaped = false;
      }
      if (!rule_shaped) {
        pos = re;
        continue;
      }
      size_t just = re + 1;
      if (just < c.text.size() && c.text[just] == ':') ++just;
      s.justification = Trim(c.text.substr(just));
      out->suppressions.push_back(std::move(s));
      pos = re;
    }
  }
}

/// Parses one parameter declaration (token slice) into ParamInfo.
ParamInfo ParseParam(const std::vector<Token>& t, size_t begin, size_t end) {
  ParamInfo p;
  // Default argument: cut at the first top-level '='.
  int depth = 0, angle = 0;
  size_t cut = end;
  for (size_t i = begin; i < end; ++i) {
    const std::string& x = t[i].text;
    if (IsAnnotationMacro(x)) p.untrusted = p.untrusted || x == "WC_UNTRUSTED";
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (depth == 0) {
      if (x == "<" && i > begin && IsIdent(t[i - 1]))
        ++angle;
      else if (x == ">" && angle > 0)
        --angle;
      else if (x == ">>" && angle > 0)
        angle = angle >= 2 ? angle - 2 : 0;
      else if (x == "=" && angle == 0) {
        cut = i;
        break;
      }
    }
  }
  // Collect top-level identifiers (annotation macros excluded).
  std::vector<std::string> ids;
  depth = 0;
  angle = 0;
  for (size_t i = begin; i < cut; ++i) {
    const std::string& x = t[i].text;
    if (x == "(" || x == "[" || x == "{") ++depth;
    if (x == ")" || x == "]" || x == "}") --depth;
    if (depth != 0) continue;
    if (x == "<" && i > begin && IsIdent(t[i - 1])) {
      ++angle;
    } else if (x == ">" && angle > 0) {
      --angle;
    } else if (x == ">>" && angle > 0) {
      angle = angle >= 2 ? angle - 2 : 0;
    } else if (angle == 0 && IsIdent(t[i]) && !IsAnnotationMacro(x)) {
      ids.push_back(x);
    }
  }
  if (ids.empty()) return p;
  // The last identifier is the name unless it is clearly a type word.
  std::string last = ids.back();
  bool named = ids.size() >= 2 && !IsNonFunctionName(last) &&
               !IsSpecifierWord(last);
  if (named) {
    p.name = last;
    ids.pop_back();
  }
  for (size_t i = ids.size(); i-- > 0;) {
    if (!IsSpecifierWord(ids[i])) {
      p.type_head = ids[i];
      break;
    }
  }
  if (!named && p.type_head.empty()) p.type_head = last;
  return p;
}

/// Extracts a field declaration from tokens [begin, end) (end = the ';' or
/// '=' position; `full_end` extends past `=` so trailing annotations before
/// the initializer are still visible — in practice annotations precede '='
/// but the full statement range is cheap to search).
void ExtractField(FileIndex* out, const std::vector<Token>& t, size_t begin,
                  size_t end, size_t full_end, const std::string& class_name) {
  if (class_name.empty()) return;
  // Leading [[...]] attributes.
  while (begin + 1 < end && t[begin].text == "[") {
    begin = SkipBalanced(t, begin, "[", "]");
  }
  std::vector<size_t> ids;  // token indices of top-level identifiers
  int angle = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& x = t[i].text;
    if (IsIdent(t[i]) && IsAnnotationMacro(x)) break;
    if (x == "(" || x == "{") {
      i = SkipBalanced(t, i, x == "(" ? "(" : "{", x == "(" ? ")" : "}") - 1;
      continue;
    }
    if (x == "[") break;  // array suffix
    if (x == "<" && i > begin && IsIdent(t[i - 1])) {
      ++angle;
    } else if (x == ">" && angle > 0) {
      --angle;
    } else if (x == ">>" && angle > 0) {
      angle = angle >= 2 ? angle - 2 : 0;
    } else if (angle == 0) {
      if (x == "," || x == ":") break;
      if (IsIdent(t[i])) ids.push_back(i);
    }
  }
  if (ids.size() < 2) return;  // lone macro invocation or access label
  size_t name_idx = ids.back();
  const std::string& name = t[name_idx].text;
  if (IsNonFunctionName(name) || IsSpecifierWord(name)) return;

  FieldInfo f;
  f.class_name = class_name;
  f.name = name;
  f.file = out->path;
  f.line = t[name_idx].line;
  for (size_t i = ids.size() - 1; i-- > 0;) {
    if (!IsSpecifierWord(t[ids[i]].text)) {
      f.type_head = t[ids[i]].text;
      break;
    }
  }
  for (size_t i = begin; i < full_end; ++i) {
    const std::string& x = t[i].text;
    if (!IsIdent(t[i])) continue;
    if (x == "WC_UNTRUSTED") f.untrusted = true;
    if ((x == "WC_GUARDED_BY" || x == "WC_PT_GUARDED_BY") &&
        i + 1 < full_end && t[i + 1].text == "(") {
      size_t close = SkipBalanced(t, i + 1, "(", ")");
      std::vector<std::string> args = SplitMacroArgs(t, i + 1, close - 1);
      if (!args.empty()) f.guarded_by = args[0];
    }
  }
  out->fields.push_back(std::move(f));
}

/// Scans one declaration statement at class or namespace scope. Records a
/// FunctionInfo or FieldInfo as appropriate and returns the index just past
/// the statement.
size_t ScanStatement(FileIndex* out, const std::vector<Token>& t, size_t start,
                     const std::vector<Scope>& scopes) {
  const size_t n = t.size();
  const std::string class_scope = InnermostClass(scopes);

  // ---- Phase A: find the parameter-list '(' and the declarator name. ----
  size_t popen = std::string::npos;
  size_t name_begin = std::string::npos;  // first token of the name chain
  std::string name;
  std::vector<std::string> quals;  // explicit A::B qualifiers before the name
  int angle = 0;
  size_t i = start;
  while (i < n) {
    const std::string& x = t[i].text;
    if (x == "operator" && IsIdent(t[i])) {
      // operator<name>: consume symbol / () / [] / conversion-type tokens up
      // to the parameter '('.
      name_begin = i;
      name = "operator";
      size_t j = i + 1;
      if (j + 1 < n && t[j].text == "(" && t[j + 1].text == ")") {
        name += "()";
        j += 2;
      } else if (j + 1 < n && t[j].text == "[" && t[j + 1].text == "]") {
        name += "[]";
        j += 2;
      } else {
        while (j < n && t[j].text != "(" && t[j].text != ";") {
          name += t[j].text;
          ++j;
        }
      }
      if (j >= n || t[j].text != "(") return SkipToSemi(t, i);
      popen = j;
      // Backward qualifiers: Foo::operator==.
      size_t k = name_begin;
      while (k >= 2 && t[k - 1].text == "::" && IsIdent(t[k - 2])) {
        quals.insert(quals.begin(), t[k - 2].text);
        k -= 2;
        name_begin = k;
      }
      break;
    }
    if (x == ";") {
      ExtractField(out, t, start, i, i, class_scope);
      return i + 1;
    }
    if (x == "=" && angle == 0) {
      // Variable / field with initializer (no parameter list seen yet).
      ExtractField(out, t, start, i, i, class_scope);
      return SkipToSemi(t, i);
    }
    if (x == "{" && angle == 0) {
      // Brace initializer in a member like `std::atomic<bool> done_{false};`.
      i = SkipBalanced(t, i, "{", "}");
      continue;
    }
    if (x == "[") {
      i = SkipBalanced(t, i, "[", "]");
      continue;
    }
    if (x == "<" && i > start && IsIdent(t[i - 1]) &&
        !IsNonFunctionName(t[i - 1].text)) {
      ++angle;
      ++i;
      continue;
    }
    if (x == ">" && angle > 0) {
      --angle;
      ++i;
      continue;
    }
    if (x == ">>" && angle > 0) {
      angle = angle >= 2 ? angle - 2 : 0;
      ++i;
      continue;
    }
    if (x == "(") {
      bool candidate = angle == 0 && i > start && IsIdent(t[i - 1]) &&
                       !IsAnnotationMacro(t[i - 1].text) &&
                       !IsNonFunctionName(t[i - 1].text);
      if (!candidate) {
        i = SkipBalanced(t, i, "(", ")");
        continue;
      }
      popen = i;
      // Backward name chain: [~] ident ( :: ident | :: ident<...> )*.
      size_t k = i - 1;
      name = t[k].text;
      name_begin = k;
      if (k > start && t[k - 1].text == "~") {
        name = "~" + name;
        --k;
        name_begin = k;
      }
      while (k >= 2 && t[k - 1].text == "::") {
        size_t q = k - 2;
        if (IsIdent(t[q])) {
          quals.insert(quals.begin(), t[q].text);
          k = q;
          name_begin = k;
          continue;
        }
        if (t[q].text == ">" || t[q].text == ">>") {
          size_t lt = MatchAngleBackward(t, q);
          if (lt != std::string::npos && lt >= 1 && IsIdent(t[lt - 1])) {
            quals.insert(quals.begin(), t[lt - 1].text);
            k = lt - 1;
            name_begin = k;
            continue;
          }
        }
        break;
      }
      break;
    }
    ++i;
  }
  if (popen == std::string::npos || popen >= n) return n;

  // ---- Phase B: parameters. ----
  size_t pclose = SkipBalanced(t, popen, "(", ")") - 1;  // index of ')'
  FunctionInfo fn;
  fn.file = out->path;
  fn.line = t[name_begin].line;
  fn.name = name;
  fn.class_name = quals.empty() ? class_scope : quals.back();
  {
    std::string q = JoinScopeNames(scopes);
    for (const std::string& part : quals) {
      if (!q.empty()) q += "::";
      q += part;
    }
    fn.qualified_name = q.empty() ? name : q + "::" + name;
  }
  for (size_t k = start; k < name_begin; ++k) {
    const std::string& x = t[k].text;
    if (IsIdent(t[k]) &&
        (IsAnnotationMacro(x) || x == "inline" || x == "static" ||
         x == "virtual" || x == "explicit" || x == "friend" ||
         x == "extern")) {
      if (k + 1 < name_begin && t[k + 1].text == "(" && IsAnnotationMacro(x))
        k = SkipBalanced(t, k + 1, "(", ")") - 1;
      continue;
    }
    if (!fn.return_type.empty()) fn.return_type += " ";
    fn.return_type += x;
  }
  {
    int depth = 0, pangle = 0;
    size_t piece_begin = popen + 1;
    for (size_t k = popen + 1; k <= pclose && k < n; ++k) {
      const std::string& x = t[k].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      if (x == ")" || x == "]" || x == "}") --depth;
      bool at_close = k == pclose;
      if (!at_close && depth == 0) {
        if (x == "<" && IsIdent(t[k - 1]))
          ++pangle;
        else if (x == ">" && pangle > 0)
          --pangle;
        else if (x == ">>" && pangle > 0)
          pangle = pangle >= 2 ? pangle - 2 : 0;
      }
      if ((at_close && depth < 0) || (x == "," && depth == 0 && pangle == 0)) {
        size_t piece_end = at_close ? pclose : k;
        if (piece_end > piece_begin)
          fn.params.push_back(ParseParam(t, piece_begin, piece_end));
        piece_begin = k + 1;
      }
    }
  }

  // ---- Phase C: trailing specifiers, annotations, body or terminator. ----
  i = pclose + 1;
  size_t guard = 0;
  while (i < n && ++guard < 4096) {
    const std::string& x = t[i].text;
    if (x == ";") {
      out->functions.push_back(std::move(fn));
      return i + 1;
    }
    if (x == "{") {
      size_t close = SkipBalanced(t, i, "{", "}");  // index past '}'
      fn.is_definition = true;
      fn.body_begin = i + 1;
      fn.body_end = close > 0 ? close - 1 : i + 1;
      out->functions.push_back(std::move(fn));
      return close;
    }
    if (x == "=") {
      // = default / = delete / = 0 — still a declaration.
      out->functions.push_back(std::move(fn));
      return SkipToSemi(t, i);
    }
    if (x == ":") {
      // Constructor initializer list: consume up to the body '{'. A '{'
      // directly after an identifier or '>' is a brace initializer, not the
      // body.
      ++i;
      while (i < n) {
        const std::string& y = t[i].text;
        if (y == "(") {
          i = SkipBalanced(t, i, "(", ")");
          continue;
        }
        if (y == "{") {
          bool init_brace =
              i > 0 && (IsIdent(t[i - 1]) || t[i - 1].text == ">");
          if (!init_brace) break;  // function body
          i = SkipBalanced(t, i, "{", "}");
          continue;
        }
        if (y == ";") break;  // malformed; bail to terminator handling
        ++i;
      }
      continue;
    }
    if (IsIdent(t[i]) && IsAnnotationMacro(x)) {
      bool has_args = i + 1 < n && t[i + 1].text == "(";
      size_t close = has_args ? SkipBalanced(t, i + 1, "(", ")") : i + 1;
      if (x == "WC_UNTRUSTED") fn.untrusted = true;
      if (x == "WC_BORROWED_VIEW") fn.borrowed_view = true;
      if (x == "WC_NO_THREAD_SAFETY_ANALYSIS") fn.no_analysis = true;
      if ((x == "WC_REQUIRES" || x == "WC_REQUIRES_SHARED") && has_args) {
        for (std::string& a : SplitMacroArgs(t, i + 1, close - 1))
          fn.requires_locks.push_back(std::move(a));
      }
      i = close;
      continue;
    }
    if (x == "noexcept" && i + 1 < n && t[i + 1].text == "(") {
      i = SkipBalanced(t, i + 1, "(", ")");
      continue;
    }
    if (x == "[") {
      i = SkipBalanced(t, i, "[", "]");
      continue;
    }
    if (x == "->") {
      // Trailing return type: consume its tokens.
      ++i;
      int tangle = 0;
      while (i < n) {
        const std::string& y = t[i].text;
        if (y == "{" || y == ";" || (y == "=" && tangle == 0)) break;
        if (IsIdent(t[i]) && IsAnnotationMacro(y)) break;
        if (y == "<")
          ++tangle;
        else if (y == ">" && tangle > 0)
          --tangle;
        else if (y == "(") {
          i = SkipBalanced(t, i, "(", ")");
          continue;
        }
        ++i;
      }
      continue;
    }
    // const, override, final, &, &&, try, volatile, mutable, requires...
    ++i;
  }
  return SkipToSemi(t, popen);
}

}  // namespace

FileIndex IndexFile(std::string path, std::string_view content) {
  TokenizedFile tf = Tokenize(content);
  FileIndex out;
  out.path = std::move(path);
  out.comments = std::move(tf.comments);
  out.tokens.reserve(tf.tokens.size());
  for (Token& tok : tf.tokens) {
    if (!tok.in_directive) out.tokens.push_back(std::move(tok));
  }
  ParseSuppressions(&out);

  const std::vector<Token>& t = out.tokens;
  const size_t n = t.size();
  std::vector<Scope> scopes;
  size_t i = 0;
  while (i < n) {
    const std::string& x = t[i].text;
    if (x == "}") {
      if (!scopes.empty()) scopes.pop_back();
      ++i;
      continue;
    }
    if (x == ";") {
      ++i;
      continue;
    }
    if (!IsIdent(t[i]) && x != "{" && x != "[" && x != "~") {
      // Stray punctuation at declaration scope; skip it.
      ++i;
      continue;
    }
    if (x == "template") {
      i = SkipTemplateHeader(t, i);
      continue;
    }
    if (x == "inline" && i + 1 < n && t[i + 1].text == "namespace") {
      ++i;
      continue;
    }
    if (x == "namespace") {
      size_t j = i + 1;
      std::string ns;
      while (j < n && (IsIdent(t[j]) || t[j].text == "::")) {
        if (IsIdent(t[j])) {
          if (!ns.empty()) ns += "::";
          ns += t[j].text;
        }
        ++j;
      }
      if (j < n && t[j].text == "{") {
        scopes.push_back(Scope{Scope::kNamespace, ns});
        i = j + 1;
      } else {
        i = SkipToSemi(t, i);  // namespace alias or malformed
      }
      continue;
    }
    if (x == "class" || x == "struct" || x == "union") {
      // Find the '{' or ';' terminating the class head.
      size_t j = i + 1;
      std::string cls;
      bool found = false;
      while (j < n) {
        const std::string& y = t[j].text;
        if (y == "(") {
          j = SkipBalanced(t, j, "(", ")");
          continue;
        }
        if (y == "<") {
          // Template specialization arguments in the head.
          int d = 0;
          while (j < n) {
            if (t[j].text == "<")
              ++d;
            else if (t[j].text == ">" && --d == 0) {
              ++j;
              break;
            } else if (t[j].text == ">>" && (d -= 2) <= 0) {
              ++j;
              break;
            }
            ++j;
          }
          continue;
        }
        if (y == ";") {
          // Forward declaration or elaborated specifier: treat as a plain
          // statement so `struct stat st;` style members still index.
          break;
        }
        if (y == "{") {
          found = true;
          break;
        }
        if (y == ":") {
          // Base clause: scan on to the '{' that opens the class body.
          size_t k = j;
          while (k < n) {
            const std::string& z = t[k].text;
            if (z == "(") {
              k = SkipBalanced(t, k, "(", ")");
              continue;
            }
            if (z == "{" || z == ";") break;
            ++k;
          }
          found = k < n && t[k].text == "{";
          j = k;
          break;
        }
        if (IsIdent(t[j]) && !IsAnnotationMacro(y) && y != "final" &&
            y != "alignas") {
          cls = y;
        }
        ++j;
      }
      if (found && j < n && t[j].text == "{") {
        scopes.push_back(Scope{Scope::kClass, cls});
        i = j + 1;
      } else {
        i = SkipToSemi(t, i);
      }
      continue;
    }
    if (x == "enum") {
      size_t j = i + 1;
      while (j < n && t[j].text != "{" && t[j].text != ";") ++j;
      if (j < n && t[j].text == "{") j = SkipBalanced(t, j, "{", "}");
      i = j < n && j < t.size() && t[j].text == ";" ? j + 1 : j;
      continue;
    }
    if (x == "using" || x == "typedef" || x == "static_assert" ||
        x == "friend") {
      i = SkipToSemi(t, i);
      continue;
    }
    if (x == "extern" && i + 1 < n && t[i + 1].kind == TokKind::kString) {
      i += 2;  // extern "C" — the '{' (if any) becomes a transparent block
      continue;
    }
    if ((x == "public" || x == "private" || x == "protected") && i + 1 < n &&
        t[i + 1].text == ":") {
      i += 2;
      continue;
    }
    if (x == "{") {
      scopes.push_back(Scope{Scope::kBlock, ""});
      ++i;
      continue;
    }
    size_t next = ScanStatement(&out, t, i, scopes);
    i = next > i ? next : i + 1;
  }
  return out;
}

RepoIndex BuildRepoIndex(std::vector<FileIndex> files) {
  std::sort(files.begin(), files.end(),
            [](const FileIndex& a, const FileIndex& b) {
              return a.path < b.path;
            });
  RepoIndex idx;
  idx.files = std::move(files);
  for (size_t fi = 0; fi < idx.files.size(); ++fi) {
    const FileIndex& file = idx.files[fi];
    for (size_t fj = 0; fj < file.functions.size(); ++fj) {
      const FunctionInfo& fn = file.functions[fj];
      if (fn.untrusted) idx.untrusted_functions.insert(fn.name);
      if (fn.borrowed_view) idx.borrowed_view_functions.insert(fn.name);
      idx.functions_by_name[fn.name].push_back(RepoIndex::FunctionRef{fi, fj});
    }
    for (const FieldInfo& field : file.fields) {
      FieldInfo& slot = idx.fields_by_class[field.class_name][field.name];
      if (slot.name.empty()) {
        slot = field;
      } else {
        // Header and .cc views of the same field: keep the annotated one.
        if (slot.guarded_by.empty()) slot.guarded_by = field.guarded_by;
        slot.untrusted = slot.untrusted || field.untrusted;
        if (slot.type_head.empty()) slot.type_head = field.type_head;
      }
    }
  }
  return idx;
}

std::string DebugSummary(const RepoIndex& index) {
  std::ostringstream os;
  for (const FileIndex& file : index.files) {
    os << "== " << file.path << "\n";
    for (const FunctionInfo& fn : file.functions) {
      os << "fn " << fn.qualified_name << "(";
      for (size_t i = 0; i < fn.params.size(); ++i) {
        if (i) os << ", ";
        os << fn.params[i].type_head;
        if (!fn.params[i].name.empty()) os << " " << fn.params[i].name;
        if (fn.params[i].untrusted) os << " !untrusted";
      }
      os << ")";
      if (!fn.return_type.empty()) os << " ret={" << fn.return_type << "}";
      if (fn.untrusted) os << " untrusted";
      if (fn.borrowed_view) os << " borrowed_view";
      if (fn.no_analysis) os << " no_analysis";
      for (const std::string& r : fn.requires_locks) os << " requires=" << r;
      if (fn.is_definition) os << " def";
      os << " @" << fn.line << "\n";
    }
    for (const FieldInfo& f : file.fields) {
      os << "field " << f.class_name << "::" << f.name << " type="
         << f.type_head;
      if (!f.guarded_by.empty()) os << " guarded_by=" << f.guarded_by;
      if (f.untrusted) os << " untrusted";
      os << " @" << f.line << "\n";
    }
  }
  os << "untrusted_functions:";
  for (const std::string& s : index.untrusted_functions) os << " " << s;
  os << "\nborrowed_view_functions:";
  for (const std::string& s : index.borrowed_view_functions) os << " " << s;
  os << "\n";
  return os.str();
}

}  // namespace analyze
}  // namespace wiclean
