// wican fixture (never compiled): clean control for the taint pass — every
// untrusted value passes a bounds gate before reaching a sink. Expected:
// zero findings.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

struct Status {};

struct Reader {
  Status ReadCount(uint64_t* v) WC_UNTRUSTED;
  size_t remaining() const;
};

Status TooBig();

Status DecodeGatedIf(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  if (count > r.remaining()) return TooBig();  // gate: compare then bail
  out->resize(count);
  return Status{};
}

void DecodeGatedMin(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  uint64_t capped = std::min<uint64_t>(count, 4096);  // gate: clamp
  out->resize(capped);
}

void DecodeGatedMacro(Reader& r, char* dst, const char* src) {
  uint64_t len = 0;
  (void)r.ReadCount(&len);
  // The bound is established by a protocol invariant the analyzer cannot
  // see; the annotation records that claim at the sink.
  memcpy(dst, src, WC_BOUNDS_CHECKED(len));
}

void DecodeGatedLoop(Reader& r) {
  uint64_t n = 0;
  (void)r.ReadCount(&n);
  if (n > 1024) n = 1024;  // gate: clamp before the loop
  for (uint64_t i = 0; i < n; ++i) {
    (void)i;
  }
}

void MetadataIsStructural(Reader& r, std::string* out) {
  // Calling size()/data() on an untrusted-but-validated view is fine: the
  // *contents* are untrusted, the extent is real.
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  std::string copy(out->data(), out->size());
  (void)copy;
}
