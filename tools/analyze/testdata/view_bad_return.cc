// wican fixture (never compiled): views of function-local memory escaping
// through the return value and through an out-parameter. Expected: two
// view-escape findings.
#include <string>
#include <string_view>

std::string_view BadReturn() {
  std::string local = "temporary";
  std::string_view view = local;
  return view;  // BAD: view outlives `local`
}

void BadOutParam(std::string_view* out) {
  std::string local = "temporary";
  std::string_view view = local;
  *out = view;  // BAD: caller receives a dangling view
}
