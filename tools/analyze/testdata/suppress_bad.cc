// wican fixture (never compiled): suppression hygiene violations — a
// missing justification, a too-short justification, and an unknown rule
// name. Expected: three bad-suppression findings (and the underlying
// tainted-size findings stay suppressed: hygiene is reported instead of
// silently un-suppressing).
#include <cstdint>
#include <vector>

struct Status {};

struct Reader {
  Status ReadCount(uint64_t* v) WC_UNTRUSTED;
};

void MissingJustification(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  out->resize(count);  // wican:allow(tainted-size)
}

void TrivialJustification(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  out->resize(count);  // wican:allow(tainted-size): ok
}

void UnknownRule(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  if (count > 16) return;
  out->resize(count);  // wican:allow(taint-size): rule name has a typo
}
