// wican fixture (never compiled): a string_view over function-local memory
// stored into a member — the member dangles as soon as the function returns.
// Expected: one view-escape finding.
#include <string>
#include <string_view>

struct Cache {
  std::string_view last_key;
  void Remember();
};

void Cache::Remember() {
  std::string scratch = "key";
  std::string_view view = scratch;
  last_key = view;  // BAD: member outlives `scratch`
}
