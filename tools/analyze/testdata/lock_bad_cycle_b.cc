// wican fixture (never compiled): the other half of the cross-file
// lock-order cycle started in lock_bad_cycle_a.cc.
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

void Pair::ReverseOrder() {
  MutexLock lb(&b);
  MutexLock la(&a);  // edge Pair::b -> Pair::a — closes the cycle
}
