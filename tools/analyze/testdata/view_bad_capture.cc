// wican fixture (never compiled): a borrowed view captured by deferred work
// — the thread-pool task may run after the view's backing store is gone.
// Expected: one view-escape finding.
#include <string>
#include <string_view>

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

struct Reader {
  std::string_view Body() WC_BORROWED_VIEW;
};

void BadDeferredCapture(ThreadPool* pool, Reader reader) {
  std::string_view body = reader.Body();
  pool->Submit([body] {  // BAD: task may outlive reader's backing bytes
    (void)body.size();
  });
}
