// wican fixture (never compiled): clean control for the lock pass —
// consistent ordering, guarded access under the lock, WC_REQUIRES honored,
// and a consistent two-mutex ordering across files. Expected: zero findings.
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct Ledger {
  Mutex mu;
  Mutex io;
  int balance WC_GUARDED_BY(mu);
  void Deposit();
  void DepositLocked() WC_REQUIRES(mu);
  void Flush();
};

void Ledger::Deposit() {
  MutexLock lock(&mu);
  balance = balance + 1;  // fine: mu held
  DepositLocked();        // fine: callee requires mu, and mu is held
}

void Ledger::DepositLocked() {
  balance = balance + 2;  // fine: caller holds mu per WC_REQUIRES
}

void Ledger::Flush() {
  MutexLock lock(&mu);
  MutexLock out(&io);  // same mu -> io order everywhere: no cycle
  balance = 0;
}
