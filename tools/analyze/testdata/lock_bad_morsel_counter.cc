// wican fixture (never compiled): the seeded-defect twin of
// relational::MorselScheduler. The real scheduler claims morsel indices under
// its mutex; this version bumps the WC_GUARDED_BY claim cursor with no lock
// on the fast path and reads it after the lock scope closed. Expected: two
// unguarded-access findings.
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct MorselScheduler {
  Mutex mu;
  unsigned long next_index WC_GUARDED_BY(mu);
  unsigned long num_morsels;
  bool Next(unsigned long* out);
  unsigned long Remaining();
};

bool MorselScheduler::Next(unsigned long* out) {
  unsigned long claimed = next_index;  // BAD: racy read, mu not held
  next_index = claimed + 1;            // BAD half of the same race (one site)
  if (claimed >= num_morsels) return false;
  *out = claimed;
  return true;
}

unsigned long MorselScheduler::Remaining() {
  {
    MutexLock lock(&mu);
    if (next_index >= num_morsels) return 0;  // fine: mu held
  }
  return num_morsels - next_index;  // BAD: lock released at end of block
}
