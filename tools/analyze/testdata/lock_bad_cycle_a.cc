// wican fixture (never compiled): half of a cross-file lock-order cycle.
// This file takes Pair::a then Pair::b; lock_bad_cycle_b.cc takes them in
// the opposite order. Neither file alone shows the cycle — only the merged
// cross-translation-unit graph does. Expected: one lock-order cycle finding
// (reported once for the deduplicated canonical cycle).
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct Pair {
  Mutex a;
  Mutex b;
  int hits;
  void ForwardOrder();
  void ReverseOrder();
};

void Pair::ForwardOrder() {
  MutexLock la(&a);
  MutexLock lb(&b);  // edge Pair::a -> Pair::b
  hits = hits + 1;
}
