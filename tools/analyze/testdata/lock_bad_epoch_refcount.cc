// wican fixture (never compiled): the seeded-defect twin of
// serve::SnapshotRegistry. The real registry mutates the epoch table and its
// pin refcounts only under mu; this version bumps a WC_GUARDED_BY pin count
// with no lock on the acquire fast path, reads the current-epoch cursor
// outside the lock during publish, and touches the refcount again after the
// lock scope closed in release. Expected: four unguarded-access findings.
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct SnapshotRegistry {
  Mutex mu;
  unsigned long current_epoch WC_GUARDED_BY(mu);
  unsigned long pins WC_GUARDED_BY(mu);
  unsigned long published;
  unsigned long Acquire();
  unsigned long Publish();
  bool Release();
};

unsigned long SnapshotRegistry::Acquire() {
  pins = pins + 1;       // BAD: racy refcount bump, mu not held (one site)
  return current_epoch;  // BAD: racy read of the epoch cursor
}

unsigned long SnapshotRegistry::Publish() {
  unsigned long next = current_epoch + 1;  // BAD: read outside the lock
  {
    MutexLock lock(&mu);
    current_epoch = next;  // fine: mu held
  }
  published = published + 1;  // fine: not a guarded field
  return next;
}

bool SnapshotRegistry::Release() {
  {
    MutexLock lock(&mu);
    if (pins == 0) return false;  // fine: mu held
  }
  pins = pins - 1;  // BAD: lock released at end of block (one site)
  return true;
}
