// wican fixture (never compiled): a real finding silenced by a justified
// suppression — same-line and line-above forms. Expected: zero findings.
#include <cstdint>
#include <vector>

struct Status {};

struct Reader {
  Status ReadCount(uint64_t* v) WC_UNTRUSTED;
};

void SuppressedSameLine(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  out->resize(count);  // wican:allow(tainted-size): bound enforced by caller contract
}

void SuppressedLineAbove(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  // wican:allow(tainted-size): count <= 64 guaranteed by framing layer
  out->resize(count);
}
