// wican fixture (never compiled): untrusted decoded count drives resize()
// and reserve() with no bounds gate. Expected: two tainted-size findings.
#include <cstdint>
#include <vector>

struct Status {};

struct Reader {
  Status ReadCount(uint64_t* v) WC_UNTRUSTED;
};

void DecodeBadResize(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  out->resize(count);  // BAD: attacker-sized allocation
}

void DecodeBadReserve(Reader& r, std::vector<int>* out) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  out->reserve(count);  // BAD: attacker-sized allocation
}
