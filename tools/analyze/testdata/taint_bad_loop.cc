// wican fixture (never compiled): untrusted decoded count used as a loop
// bound without a prior gate. Expected: one tainted-size finding (the loop),
// and the propagation case below where taint flows through a plain
// assignment before reaching the loop.
#include <cstdint>

struct Status {};

struct Reader {
  Status ReadCount(uint64_t* v) WC_UNTRUSTED;
};

void DecodeBadLoop(Reader& r) {
  uint64_t n = 0;
  (void)r.ReadCount(&n);
  for (uint64_t i = 0; i < n; ++i) {  // BAD: attacker-controlled trip count
    (void)i;
  }
}

void DecodeBadLoopViaCopy(Reader& r) {
  uint64_t n = 0;
  (void)r.ReadCount(&n);
  uint64_t limit = n * 2;  // taint propagates through assignment
  uint64_t i = 0;
  while (i < limit) {  // BAD: still attacker-controlled
    ++i;
  }
}
