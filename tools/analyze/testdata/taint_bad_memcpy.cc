// wican fixture (never compiled): untrusted decoded length used as a memcpy
// size and as an array index. Expected: two tainted-size findings.
#include <cstdint>
#include <cstring>

struct Status {};

struct Reader {
  Status ReadLen(uint64_t* v) WC_UNTRUSTED;
};

void DecodeBadMemcpy(Reader& r, char* dst, const char* src) {
  uint64_t len = 0;
  (void)r.ReadLen(&len);
  memcpy(dst, src, len);  // BAD: attacker-sized copy
}

int DecodeBadIndex(Reader& r, const int* table) {
  uint64_t slot = 0;
  (void)r.ReadLen(&slot);
  return table[slot];  // BAD: attacker-controlled index
}
