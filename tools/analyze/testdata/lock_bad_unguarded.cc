// wican fixture (never compiled): WC_GUARDED_BY fields accessed without the
// guarding mutex held — a write with no lock at all, and an access after the
// lock scope closed. Expected: two unguarded-access findings.
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct Queue {
  Mutex mu;
  int depth WC_GUARDED_BY(mu);
  void NoLockAtAll();
  void LockScopeTooSmall();
};

void Queue::NoLockAtAll() {
  depth = depth + 1;  // BAD: mu not held
}

void Queue::LockScopeTooSmall() {
  {
    MutexLock lock(&mu);
    depth = 0;  // fine: mu held
  }
  depth = depth + 1;  // BAD: lock released at end of block
}
