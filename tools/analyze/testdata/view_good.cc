// wican fixture (never compiled): clean control for the lifetime pass —
// views used within the owner's scope, a view of member storage returned
// from a method (the member outlives the call), and a deferred task that
// copies instead of borrowing. Expected: zero findings.
#include <string>
#include <string_view>

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

struct Holder {
  std::string owned;
  std::string_view View() WC_BORROWED_VIEW;
  std::string_view OfMember();
};

std::string_view Holder::OfMember() {
  std::string_view view = owned;
  return view;  // fine: backing is the member, which outlives the call
}

size_t UseWithinScope() {
  std::string local = "alive here";
  std::string_view view = local;
  return view.size();  // fine: no escape, local still alive
}

void GoodDeferredCopy(ThreadPool* pool, Holder* h) {
  std::string copy(h->owned);
  pool->Submit([copy] {  // fine: task owns its copy
    (void)copy.size();
  });
}
