// wican fixture (never compiled): sized container construction from an
// untrusted count, plus taint entering through a WC_UNTRUSTED parameter and
// an untrusted field. Expected: three tainted-size findings.
#include <cstdint>
#include <string>
#include <vector>

struct Status {};

struct Reader {
  Status ReadCount(uint64_t* v) WC_UNTRUSTED;
};

struct Frame {
  uint64_t declared_size WC_UNTRUSTED;  // parsed from the wire header
};

void DecodeBadConstruct(Reader& r) {
  uint64_t count = 0;
  (void)r.ReadCount(&count);
  std::vector<int> slots(count);  // BAD: attacker-sized construction
  (void)slots;
}

void DecodeBadParam(uint64_t wire_count WC_UNTRUSTED,
                    std::vector<int>* out) {
  out->resize(wire_count);  // BAD: untrusted parameter, no gate
}

void DecodeBadField(const Frame& frame, std::string* out) {
  out->resize(frame.declared_size);  // BAD: untrusted field, no gate
}
