// wican fixture (never compiled): self-deadlocks — re-acquiring a mutex
// already held, both directly and through a callee (which a per-TU analysis
// with the callee defined elsewhere would miss). Expected: two lock-order
// findings.
struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex* mu);
};

struct Counter {
  Mutex mu;
  int value;
  void DirectRelock();
  void RelockThroughCallee();
  void Bump();
};

void Counter::DirectRelock() {
  MutexLock outer(&mu);
  MutexLock inner(&mu);  // BAD: relock of Counter::mu
  value = value + 1;
}

void Counter::Bump() {
  MutexLock lock(&mu);
  value = value + 1;
}

void Counter::RelockThroughCallee() {
  MutexLock lock(&mu);
  Bump();  // BAD: callee re-acquires Counter::mu
}
