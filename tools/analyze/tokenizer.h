#ifndef WICLEAN_TOOLS_ANALYZE_TOKENIZER_H_
#define WICLEAN_TOOLS_ANALYZE_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace wiclean {
namespace analyze {

/// Lightweight C++ tokenizer — the front end of the `wican` analyzer
/// (tools/analyze/wican_main.cc). It works on raw, unpreprocessed source:
/// macros are seen by name (which is exactly how the WC_* annotation
/// contract in src/common/annotations.h is consumed), includes are not
/// followed (cross-file knowledge comes from indexing every file, see
/// index.h), and line splices (backslash-newline) are resolved while keeping
/// physical line numbers, so multi-line preprocessor definitions tokenize as
/// one logical line.
///
/// Handled beyond the obvious: // and /* */ comments (captured separately
/// for wican:allow suppressions), string/char literals with escapes, raw
/// string literals R"delim(...)delim" (any prefix), digit separators
/// (1'000'000), and maximal-munch punctuation ("::", "->", "<=>", ...).
/// ">>" tokenizes as one punctuator; angle-bracket balancing in the indexer
/// treats it as two closers, which is how nested template argument lists
/// ("vector<vector<int>>") stay balanced.

enum class TokKind {
  kIdent,   // identifiers and keywords (no keyword table; passes match text)
  kNumber,  // integer / floating literal, including suffixes
  kString,  // string literal; text is the *contents* (no quotes, no prefix)
  kChar,    // character literal; text is the contents
  kPunct,   // operator / punctuator, maximal munch
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  size_t line = 0;            // 1-based physical line of the first character
  bool in_directive = false;  // inside a preprocessor directive
};

/// One comment, with the leading // or /* */ markers stripped.
struct Comment {
  size_t line = 0;  // 1-based line the comment starts on
  std::string text;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes one file's contents. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to best-effort tokens, which is the right
/// behavior for an analyzer that must keep going.
TokenizedFile Tokenize(std::string_view content);

}  // namespace analyze
}  // namespace wiclean

#endif  // WICLEAN_TOOLS_ANALYZE_TOKENIZER_H_
