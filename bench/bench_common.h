#ifndef WICLEAN_BENCH_BENCH_COMMON_H_
#define WICLEAN_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment-reproduction harnesses (Fig 4, Table 1,
// the small-data candidate experiment, and the §6.3 quality analysis).

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/timer.h"
#include "dump/ingest.h"
#include "synth/dump_render.h"
#include "synth/synthesizer.h"

namespace wiclean::bench {

/// Builds a soccer world of the given seed size (one year of history unless
/// `years` says otherwise). Exits on failure — these are experiment drivers.
inline SynthWorld MakeSoccerWorld(size_t seeds, uint64_t rng_seed = 97,
                                  int years = 1) {
  SynthOptions options;
  options.seed_entities = seeds;
  options.years = years;
  options.rng_seed = rng_seed;
  Result<SynthWorld> world = Synthesize(options);
  if (!world.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 world.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(world).value();
}

/// The paper's preprocessing step: render the world's history as a MediaWiki
/// dump, then parse/diff it back into a revision store through the staged
/// ingestion pipeline. Returns the wall time in seconds; the reconstructed
/// store is written to *store. `options.num_threads` widens the parse/diff
/// stage; `stats_out` (optional) receives the counters and the per-stage
/// read/parse/merge split.
inline double TimeDumpPreprocessing(const SynthWorld& world,
                                    Timestamp time_begin, Timestamp time_end,
                                    RevisionStore* store,
                                    const IngestOptions& options = {},
                                    IngestStats* stats_out = nullptr) {
  std::ostringstream dump;
  // Rendering is the *generator's* job, not the system's: exclude it.
  if (!WriteDump(world, time_begin, time_end, &dump).ok()) {
    std::fprintf(stderr, "dump rendering failed\n");
    std::exit(1);
  }
  std::string text = dump.str();

  Timer timer;
  std::istringstream in(text);
  Result<IngestStats> stats = IngestDump(&in, *world.registry, store, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  double elapsed = timer.ElapsedSeconds();
  if (stats_out != nullptr) *stats_out = *stats;
  return elapsed;
}

/// argv[1] (if present) overrides a default size parameter, so the harnesses
/// can be scaled up or down from the command line.
inline size_t SizeArg(int argc, char** argv, size_t fallback) {
  if (argc > 1) {
    size_t v = std::strtoul(argv[1], nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

}  // namespace wiclean::bench

#endif  // WICLEAN_BENCH_BENCH_COMMON_H_
