// Figure 4(c): preprocessing/mining time for varying window sizes.
//
// Paper setup: soccer domain, 500 seeds, tau=0.8; windows of 2, 4 and 8
// weeks (first two weeks of August, the whole month, July+August). Larger
// windows contain more updates, so both preprocessing and mining grow;
// PM−join grows fastest.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/miner.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t seeds = SizeArg(argc, argv, 500);
  struct Row {
    const char* label;
    TimeWindow window;
  };
  const Row rows[] = {
      {"2W", {210 * kSecondsPerDay, 224 * kSecondsPerDay}},
      {"4W", {210 * kSecondsPerDay, 238 * kSecondsPerDay}},
      {"8W", {196 * kSecondsPerDay, 252 * kSecondsPerDay}},
  };

  SynthWorld world = MakeSoccerWorld(seeds);

  std::printf(
      "Figure 4(c): running time vs window size\n"
      "soccer domain, %zu seeds, tau=0.8; times in seconds\n"
      "paper shape: larger window -> more updates -> more time, PM-join "
      "degrading fastest\n\n",
      seeds);
  std::printf("%-4s %10s %10s %12s %12s %10s\n", "W", "preproc", "reduce",
              "mine(PM)", "mine(PM-join)", "actions");

  for (const Row& row : rows) {
    RevisionStore parsed;
    double parse_seconds = TimeDumpPreprocessing(world, row.window.begin,
                                                 row.window.end, &parsed);

    MinerOptions pm_options;
    pm_options.frequency_threshold = 0.8;
    pm_options.max_abstraction_lift = 1;
    pm_options.max_pattern_actions = 6;
    MinerOptions pmjoin_options = pm_options;
    pmjoin_options.join_engine = JoinEngineKind::kNestedLoop;

    PatternMiner pm(world.registry.get(), &parsed, pm_options);
    PatternMiner pmjoin(world.registry.get(), &parsed, pmjoin_options);
    Result<MineWindowResult> pm_result =
        pm.MineWindow(world.types.soccer_player, row.window);
    Result<MineWindowResult> pmjoin_result =
        pmjoin.MineWindow(world.types.soccer_player, row.window);
    if (!pm_result.ok() || !pmjoin_result.ok()) {
      std::fprintf(stderr, "mining failed\n");
      return 1;
    }
    std::printf("%-4s %10.3f %10.3f %12.4f %12.4f %10zu\n", row.label,
                parse_seconds, pm_result->stats.ingest_seconds,
                pm_result->stats.mine_seconds,
                pmjoin_result->stats.mine_seconds,
                pm_result->stats.actions_ingested);
  }
  return 0;
}
