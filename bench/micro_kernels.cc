// Micro-benchmarks (google-benchmark) for the hot kernels behind the paper's
// two optimizations: the join engines used for pattern-realization tables
// (hash vs nested loop — the PM vs PM−join ablation at operator granularity),
// the full outer join behind Algorithm 3, the action-reduction step, and
// pattern canonicalization.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/pattern.h"
#include "relational/ops.h"
#include "revision/revision_store.h"

namespace wiclean {
namespace {

namespace rel = ::wiclean::relational;

rel::Table RandomPairs(Rng* rng, size_t rows, int64_t domain) {
  rel::Schema schema;
  schema.AddField(rel::Field{"u", rel::DataType::kInt64});
  schema.AddField(rel::Field{"v", rel::DataType::kInt64});
  rel::Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    t.AppendInt64Row({static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(domain))});
  }
  return t;
}

void BM_HashJoin(benchmark::State& state) {
  Rng rng(1);
  size_t n = static_cast<size_t>(state.range(0));
  rel::Table left = RandomPairs(&rng, n, static_cast<int64_t>(n));
  rel::Table right = RandomPairs(&rng, n, static_cast<int64_t>(n));
  rel::JoinSpec spec;
  spec.equal_cols = {{1, 0}};
  for (auto _ : state) {
    auto out = rel::HashJoin(left, right, spec);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_HashJoin)->Range(256, 16384);

void BM_NestedLoopJoin(benchmark::State& state) {
  Rng rng(1);
  size_t n = static_cast<size_t>(state.range(0));
  rel::Table left = RandomPairs(&rng, n, static_cast<int64_t>(n));
  rel::Table right = RandomPairs(&rng, n, static_cast<int64_t>(n));
  rel::JoinSpec spec;
  spec.equal_cols = {{1, 0}};
  for (auto _ : state) {
    auto out = rel::NestedLoopJoin(left, right, spec);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_NestedLoopJoin)->Range(256, 4096);

void BM_FullOuterJoin(benchmark::State& state) {
  Rng rng(2);
  size_t n = static_cast<size_t>(state.range(0));
  rel::Table left = RandomPairs(&rng, n, static_cast<int64_t>(2 * n));
  rel::Table right = RandomPairs(&rng, n, static_cast<int64_t>(2 * n));
  rel::JoinSpec spec;
  spec.equal_cols = {{1, 0}};
  for (auto _ : state) {
    auto out = rel::FullOuterJoin(left, right, spec);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FullOuterJoin)->Range(256, 16384);

void BM_ReduceActions(benchmark::State& state) {
  Rng rng(3);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Action> soup;
  soup.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Action a;
    a.op = rng.NextBernoulli(0.5) ? EditOp::kAdd : EditOp::kRemove;
    a.subject = static_cast<EntityId>(rng.NextBelow(n / 4 + 1));
    a.relation = "relation" + std::to_string(rng.NextBelow(4));
    a.object = static_cast<EntityId>(rng.NextBelow(n / 4 + 1));
    a.time = static_cast<Timestamp>(rng.NextBelow(1'000'000));
    soup.push_back(std::move(a));
  }
  for (auto _ : state) {
    auto out = ReduceActions(soup);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ReduceActions)->Range(256, 16384);

void BM_CanonicalKey(benchmark::State& state) {
  // A transfer-with-league pattern: 5 variables, 6 actions, with a club and
  // a league variable pair of equal types (worst case for the permutation
  // canonicalizer at realistic pattern sizes).
  TypeTaxonomy taxonomy;
  TypeId thing = *taxonomy.AddRoot("thing");
  TypeId player = *taxonomy.AddType("player", thing);
  TypeId club = *taxonomy.AddType("club", thing);
  TypeId league = *taxonomy.AddType("league", thing);
  Pattern p;
  int pl = p.AddVar(player);
  int c1 = p.AddVar(club);
  int c2 = p.AddVar(club);
  int l1 = p.AddVar(league);
  int l2 = p.AddVar(league);
  (void)p.AddAction(EditOp::kAdd, pl, "current_club", c1);
  (void)p.AddAction(EditOp::kRemove, pl, "current_club", c2);
  (void)p.AddAction(EditOp::kAdd, c1, "squad", pl);
  (void)p.AddAction(EditOp::kRemove, c2, "squad", pl);
  (void)p.AddAction(EditOp::kAdd, pl, "in_league", l1);
  (void)p.AddAction(EditOp::kRemove, pl, "in_league", l2);
  (void)p.SetSourceVar(pl);
  for (auto _ : state) {
    std::string key = p.CanonicalKey();
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_CanonicalKey);

void BM_IsSpecializationOf(benchmark::State& state) {
  TypeTaxonomy taxonomy;
  TypeId thing = *taxonomy.AddRoot("thing");
  TypeId player = *taxonomy.AddType("player", thing);
  TypeId club = *taxonomy.AddType("club", thing);
  Pattern big;
  int pl = big.AddVar(player);
  int c1 = big.AddVar(club);
  int c2 = big.AddVar(club);
  (void)big.AddAction(EditOp::kAdd, pl, "current_club", c1);
  (void)big.AddAction(EditOp::kRemove, pl, "current_club", c2);
  (void)big.AddAction(EditOp::kAdd, c1, "squad", pl);
  (void)big.AddAction(EditOp::kRemove, c2, "squad", pl);
  (void)big.SetSourceVar(pl);
  Pattern small;
  pl = small.AddVar(player);
  int c = small.AddVar(club);
  (void)small.AddAction(EditOp::kAdd, pl, "current_club", c);
  (void)small.SetSourceVar(pl);
  for (auto _ : state) {
    bool result = IsSpecializationOf(big, small, taxonomy);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IsSpecializationOf);

}  // namespace
}  // namespace wiclean

BENCHMARK_MAIN();
