// Figure 4(d): WC execution time on 1 core vs 16 cores.
//
// Paper setup: the full window-and-pattern search over the year (all
// non-overlapping windows mined independently), seed sets of 500 / 1K / 2K /
// 3K entities, single-threaded vs 16 workers; the paper reports ~4x speedup
// on a 16-core server.
//
// IMPORTANT CAVEAT: this reproduction host has a single physical core, so
// the 16-thread column measures the thread-pool decomposition overhead, not
// hardware parallelism — expect a speedup of ~1.0 here and real speedups on
// multi-core hardware. The *decomposition* (window-parallel mining) is
// exactly the paper's.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/window_search.h"

using namespace wiclean;
using namespace wiclean::bench;

namespace {

double RunSearch(const SynthWorld& world, size_t threads,
                 size_t* entities_processed) {
  WindowSearchOptions options;
  options.initial_threshold = 0.8;
  options.miner.max_abstraction_lift = 1;
  options.miner.max_pattern_actions = 6;
  options.mine_relative = false;
  options.num_threads = threads;
  WindowSearch search(world.registry.get(), &world.store, options);

  Timer timer;
  Result<WindowSearchResult> result =
      search.Run(world.types.soccer_player, 0, kSecondsPerYear);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  *entities_processed = result->total_stats.entities_ingested;
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = SizeArg(argc, argv, 2000);
  const size_t seed_sizes[] = {scale / 4, scale / 2, (3 * scale) / 4, scale};

  std::printf(
      "Figure 4(d): WC pattern-mining time, 1 thread vs 16 threads\n"
      "full-year window search, soccer domain; times in seconds\n"
      "host hardware concurrency: %u (paper used 16 cores; ~4x speedup)\n\n",
      std::thread::hardware_concurrency());
  std::printf("%-18s %12s %12s %10s\n", "seeds(processed)", "1 thread",
              "16 threads", "speedup");

  for (size_t seeds : seed_sizes) {
    SynthWorld world = MakeSoccerWorld(seeds);
    size_t processed = 0;
    double serial = RunSearch(world, 1, &processed);
    double parallel = RunSearch(world, 16, &processed);
    char label[64];
    std::snprintf(label, sizeof(label), "%zu (%zu)", seeds, processed);
    std::printf("%-18s %12.3f %12.3f %9.2fx\n", label, serial, parallel,
                parallel > 0 ? serial / parallel : 0.0);
  }
  return 0;
}
