// Cold-start harness for the WCAL action log: how much faster is replaying
// the binary action artifact than re-running the XML parse/diff pipeline,
// and what does block-seek selective ingestion buy on top.
//
// The run is self-verifying: every replayed store is fingerprinted with
// StoreDigest and compared against the direct-XML-ingest store; a mismatch
// aborts the run, so the reported speedups can only come from an artifact
// that reproduces ingestion exactly.
//
// Usage: actionlog_coldstart [seeds] [output.json]
//   seeds        largest world size (default 800; also runs seeds/4, seeds/2)
//   output.json  result file (default: BENCH_actionlog.json in the CWD)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/json.h"
#include "common/timer.h"
#include "dump/page_source.h"
#include "dump/pipeline.h"
#include "log/action_log_reader.h"
#include "log/action_log_writer.h"
#include "log/replay.h"
#include "revision/revision_store.h"

namespace wiclean {
namespace {

constexpr int kReps = 3;

void Require(bool condition, const char* what) {
  if (!condition) {
    std::fprintf(stderr, "SELF-CHECK FAILED: %s\n", what);
    std::exit(1);
  }
}

template <typename Fn>
double MeasureBest(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    fn();
    double elapsed = timer.ElapsedSeconds();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

struct SizeResult {
  size_t seeds = 0;
  size_t actions = 0;
  size_t xml_bytes = 0;
  size_t wcal_bytes = 0;
  size_t blocks = 0;
  double xml_ingest_seconds = 0;
  double log_write_seconds = 0;  // one-time cost of producing the artifact
  double replay_seconds = 0;
  double replay_seconds_4t = 0;
  // Selective ingestion of one subject decile.
  size_t selective_blocks_decoded = 0;
  double selective_seconds = 0;
};

SizeResult RunSize(size_t seeds, const std::string& wcal_path) {
  SizeResult out;
  out.seeds = seeds;
  SynthWorld world = bench::MakeSoccerWorld(seeds);
  const EntityId num_entities =
      static_cast<EntityId>(world.registry->size());

  std::ostringstream dump;
  if (!WriteDump(world, 0, kSecondsPerYear, &dump).ok()) {
    std::fprintf(stderr, "dump rendering failed\n");
    std::exit(1);
  }
  const std::string xml = dump.str();
  out.xml_bytes = xml.size();

  // Reference: the full XML parse/diff path, the cost WCAL amortizes away.
  RevisionStore direct;
  out.xml_ingest_seconds = MeasureBest([&] {
    RevisionStore store;
    std::istringstream in(xml);
    Result<IngestStats> stats = IngestDump(&in, *world.registry, &store, {});
    Require(stats.ok(), "direct XML ingest");
    direct = std::move(store);
  });
  out.actions = direct.num_actions();
  const uint64_t want = StoreDigest(direct, num_entities);

  // One-time artifact production (XML -> WCAL), included for honesty: the
  // artifact pays for itself on the second cold start.
  out.log_write_seconds = MeasureBest([&] {
    std::ofstream file(wcal_path, std::ios::binary | std::ios::trunc);
    ActionLogWriter writer(&file);
    Require(writer.status().ok(), "action log writer open");
    std::istringstream in(xml);
    XmlPageSource source(&in);
    Result<IngestStats> stats =
        RunIngestPipeline(&source, *world.registry, &writer, {});
    Require(stats.ok(), "ingest into action log");
    Require(writer.Finish().ok(), "action log finish");
  });
  {
    std::ifstream file(wcal_path, std::ios::binary | std::ios::ate);
    out.wcal_bytes = static_cast<size_t>(file.tellg());
  }

  // Cold start from the artifact: mmap + block decode + bulk append.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    uint64_t digest = 0;
    size_t blocks = 0;
    double seconds = MeasureBest([&] {
      RevisionStore store;
      ReplayOptions options;
      options.num_threads = threads;
      Result<IngestStats> stats =
          ReplayActionLogFile(wcal_path, &store, options);
      Require(stats.ok(), "replay from action log");
      Require(stats->actions == out.actions, "replayed action count");
      digest = StoreDigest(store, num_entities);
      blocks = stats->log_blocks;
    });
    Require(digest == want, "replayed store == direct XML ingest store");
    if (threads == 1) {
      out.replay_seconds = seconds;
      out.blocks = blocks;
    } else {
      out.replay_seconds_4t = seconds;
    }
  }

  // Selective ingestion: the first subject decile, seekable via the per-block
  // subject span in the index without touching the other blocks' bytes.
  {
    Result<ActionLogReader> reader = ActionLogReader::OpenFile(wcal_path);
    Require(reader.ok(), "reopen action log");
    ReplayOptions options;
    options.selective = true;
    options.min_subject = 0;
    options.max_subject = num_entities / 10;
    RevisionStore partial;
    size_t blocks = 0;
    out.selective_seconds = MeasureBest([&] {
      RevisionStore store;
      RevisionStoreSink sink(&store);
      Result<IngestStats> stats = ReplayActionLog(*reader, &sink, options);
      Require(stats.ok(), "selective replay");
      blocks = stats->log_blocks;
      partial = std::move(store);
    });
    out.selective_blocks_decoded = blocks;
    Require(blocks <= reader->num_blocks(), "selective block accounting");
    // Block-granular filtering over-approximates, never under: every subject
    // in range must come back with its complete log.
    for (EntityId e = 0; e <= options.max_subject; ++e) {
      Require(partial.LogOf(e) == direct.LogOf(e),
              "selective replay preserves in-range logs");
    }
  }
  return out;
}

double Speedup(double reference, double optimized) {
  return optimized > 0 ? reference / optimized : 0;
}

void WriteJson(const std::vector<SizeResult>& results, const char* path) {
  std::ofstream file(path);
  JsonWriter w(&file, /*pretty=*/true);
  w.BeginObject();
  w.Key("bench");
  w.String("actionlog_coldstart");
  w.Key("reps");
  w.Int(kReps);
  w.Key("self_verified");
  w.Bool(true);  // the process aborts before writing JSON otherwise
  w.Key("sizes");
  w.BeginArray();
  for (const SizeResult& r : results) {
    w.BeginObject();
    w.Key("seeds");
    w.Int(static_cast<int64_t>(r.seeds));
    w.Key("actions");
    w.Int(static_cast<int64_t>(r.actions));
    w.Key("xml_bytes");
    w.Int(static_cast<int64_t>(r.xml_bytes));
    w.Key("wcal_bytes");
    w.Int(static_cast<int64_t>(r.wcal_bytes));
    w.Key("wcal_blocks");
    w.Int(static_cast<int64_t>(r.blocks));
    w.Key("size_ratio");
    w.Number(r.wcal_bytes > 0
                 ? static_cast<double>(r.xml_bytes) /
                       static_cast<double>(r.wcal_bytes)
                 : 0);
    w.Key("xml_ingest_seconds");
    w.Number(r.xml_ingest_seconds);
    w.Key("log_write_seconds");
    w.Number(r.log_write_seconds);
    w.Key("replay_seconds");
    w.Number(r.replay_seconds);
    w.Key("replay_speedup");
    w.Number(Speedup(r.xml_ingest_seconds, r.replay_seconds));
    w.Key("replay_seconds_4t");
    w.Number(r.replay_seconds_4t);
    w.Key("selective_blocks_decoded");
    w.Int(static_cast<int64_t>(r.selective_blocks_decoded));
    w.Key("selective_seconds");
    w.Number(r.selective_seconds);
    w.Key("selective_speedup_vs_xml");
    w.Number(Speedup(r.xml_ingest_seconds, r.selective_seconds));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  file << "\n";
}

int Main(int argc, char** argv) {
  size_t scale = bench::SizeArg(argc, argv, 800);
  std::vector<size_t> sizes = {scale / 4, scale / 2, scale};
  if (argc > 1) sizes = {scale};
  const char* out_path = argc > 2 ? argv[2] : "BENCH_actionlog.json";
  const std::string wcal_path = std::string(out_path) + ".tmp.wcal";

  std::printf(
      "WCAL cold start: XML parse/diff vs action-log replay (best of %d)\n\n",
      kReps);
  std::vector<SizeResult> results;
  for (size_t seeds : sizes) {
    SizeResult r = RunSize(seeds, wcal_path);
    std::printf(
        "seeds=%zu actions=%zu | xml %zu B -> wcal %zu B (%.1fx smaller) | "
        "ingest %.3fs vs replay %.3fs (%.1fx) | selective %zu/%zu blocks "
        "%.4fs\n",
        r.seeds, r.actions, r.xml_bytes, r.wcal_bytes,
        Speedup(static_cast<double>(r.xml_bytes),
                static_cast<double>(r.wcal_bytes)),
        r.xml_ingest_seconds, r.replay_seconds,
        Speedup(r.xml_ingest_seconds, r.replay_seconds),
        r.selective_blocks_decoded, r.blocks, r.selective_seconds);
    results.push_back(r);
  }
  std::remove(wcal_path.c_str());
  WriteJson(results, out_path);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace wiclean

int main(int argc, char** argv) { return wiclean::Main(argc, argv); }
