// Figure 4(b): running time as a function of the frequency threshold.
//
// Paper setup: soccer domain, 500 seed entities, the month of August,
// thresholds 0.7 / 0.4 / 0.2. The lower the threshold, the more candidate
// patterns must be examined, so mining time grows — much faster for PM−join
// than for PM.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/miner.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t seeds = SizeArg(argc, argv, 500);
  const double thresholds[] = {0.7, 0.4, 0.2};
  const TimeWindow august{210 * kSecondsPerDay, 238 * kSecondsPerDay};

  SynthWorld world = MakeSoccerWorld(seeds);
  RevisionStore parsed;
  double parse_seconds =
      TimeDumpPreprocessing(world, 0, kSecondsPerYear, &parsed);

  std::printf(
      "Figure 4(b): running time vs frequency threshold\n"
      "soccer domain, %zu seeds, 4-week August window; times in seconds\n"
      "paper shape: lower threshold -> more candidates -> slower, with "
      "PM-join degrading fastest\n\n",
      seeds);
  std::printf("%-6s %10s %10s %12s %12s %12s\n", "tau", "preproc", "reduce",
              "mine(PM)", "mine(PM-join)", "candidates");

  for (double tau : thresholds) {
    MinerOptions pm_options;
    pm_options.frequency_threshold = tau;
    pm_options.max_abstraction_lift = 1;
    pm_options.max_pattern_actions = 6;
    MinerOptions pmjoin_options = pm_options;
    pmjoin_options.join_engine = JoinEngineKind::kNestedLoop;

    PatternMiner pm(world.registry.get(), &parsed, pm_options);
    PatternMiner pmjoin(world.registry.get(), &parsed, pmjoin_options);
    Result<MineWindowResult> pm_result =
        pm.MineWindow(world.types.soccer_player, august);
    Result<MineWindowResult> pmjoin_result =
        pmjoin.MineWindow(world.types.soccer_player, august);
    if (!pm_result.ok() || !pmjoin_result.ok()) {
      std::fprintf(stderr, "mining failed\n");
      return 1;
    }
    std::printf("%-6.2f %10.3f %10.3f %12.4f %12.4f %12zu\n", tau,
                parse_seconds, pm_result->stats.ingest_seconds,
                pm_result->stats.mine_seconds,
                pmjoin_result->stats.mine_seconds,
                pm_result->stats.candidates_considered);
  }
  return 0;
}
