// Timed differential harness for the columnar join kernels: the flat
// open-addressing HashJoin vs the preserved multimap ReferenceHashJoin, the
// fused JoinRealizations operator vs the unfused join + span-prune + dedup
// pipeline it replaced, and the flat DedupKeepTightest vs its row-
// materializing reference. Every timed pair is also checked for agreement, so
// a regression in either speed or semantics shows up here.
//
// Usage: join_kernels [rows] [output.json]
//   rows         single size to run (default: 1000, 10000, 50000)
//   output.json  result file (default: BENCH_join.json in the CWD)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/realization_join.h"
#include "relational/join_hash_table.h"
#include "relational/morsel.h"
#include "relational/ops.h"
#include "relational/reference_join.h"
#include "relational/table.h"

namespace wiclean {
namespace {

namespace rel = ::wiclean::relational;

constexpr size_t kNumVars = 3;
constexpr int64_t kHorizon = 100000;
constexpr int kReps = 7;
// Thread counts for the morsel lanes (fig. 4d-shaped scaling column).
constexpr size_t kMorselThreads[] = {1, 2, 4};
constexpr size_t kNumMorselLanes =
    sizeof(kMorselThreads) / sizeof(kMorselThreads[0]);

rel::Schema VarSchema(size_t num_vars) {
  rel::Schema schema;
  for (size_t i = 0; i < num_vars; ++i) {
    schema.AddField(rel::Field{"v" + std::to_string(i), rel::DataType::kInt64});
  }
  schema.AddField(rel::Field{"tmin", rel::DataType::kInt64});
  schema.AddField(rel::Field{"tmax", rel::DataType::kInt64});
  return schema;
}

rel::Table RandomRealizationTable(Rng* rng, size_t rows, int64_t domain) {
  rel::Table t(VarSchema(kNumVars));
  std::vector<int64_t> row(kNumVars + 2);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < kNumVars; ++c) {
      row[c] = static_cast<int64_t>(rng->NextBelow(domain));
    }
    int64_t t0 = static_cast<int64_t>(rng->NextBelow(kHorizon));
    row[kNumVars] = t0;
    row[kNumVars + 1] = t0 + static_cast<int64_t>(rng->NextBelow(kHorizon));
    t.AppendInt64Row(row);
  }
  return t;
}

rel::Table RandomActionTable(Rng* rng, size_t rows, int64_t domain) {
  rel::Schema schema;
  schema.AddField(rel::Field{"u", rel::DataType::kInt64});
  schema.AddField(rel::Field{"v", rel::DataType::kInt64});
  schema.AddField(rel::Field{"t", rel::DataType::kInt64});
  rel::Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    t.AppendInt64Row({static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(kHorizon))});
  }
  return t;
}

// Best-of-kReps wall time for one kernel invocation.
template <typename Fn>
double MeasureBest(Fn&& fn) {
  double best = std::numeric_limits<double>::max();
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

std::vector<std::string> SortedRowList(const rel::Table& t) {
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (const rel::Value& v : t.RowValues(r)) key += v.ToString() + "|";
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Order-sensitive streaming digest for byte-identity checks (the morsel and
// vectorized lanes promise positional equality). A digest instead of a
// materialized row list keeps tens of MB of strings from sitting on the heap
// while later lanes are being timed.
uint64_t TableDigest(const rel::Table& t) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= '|';
    h *= 1099511628211ULL;
  };
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (const rel::Value& v : t.RowValues(r)) mix(v.ToString());
  }
  return h;
}

// Candidate order differs between the two join engines, so dedup tie-breaks
// (same span width, different [tmin, tmax]) can keep different
// representatives. The order-invariant signature is (variables, span width).
std::vector<std::string> SortedAssignmentWidths(const rel::Table& t) {
  const size_t n = t.num_columns() - 2;
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < n; ++c) {
      key += std::to_string(t.column(c).Int64At(r)) + "|";
    }
    key += std::to_string(t.column(n + 1).Int64At(r) - t.column(n).Int64At(r));
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "self-check failed: %s\n", what);
    std::exit(1);
  }
}

rel::Table MustTable(Result<rel::Table> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

struct SizeResult {
  size_t rows = 0;
  size_t join_output_rows = 0;
  size_t fused_output_rows = 0;
  double hash_join_columnar_seconds = 0;
  double hash_join_reference_seconds = 0;
  double fused_seconds = 0;
  double unfused_seconds = 0;
  double dedup_flat_seconds = 0;
  double dedup_reference_seconds = 0;
  // Probe lanes: batch width 1 (the pre-vectorization scalar loop) vs
  // kProbeBatchWidth (prefetched two-pass resolution) — both serial.
  double probe_scalar_seconds = 0;
  double probe_vectorized_seconds = 0;
  // Morsel lanes at kMorselThreads[i] threads (default morsel size, batch 8).
  double join_morsel_seconds[kNumMorselLanes] = {0};
  double fused_morsel_seconds[kNumMorselLanes] = {0};
  // Serial baselines re-measured in strict alternation with the 1-thread
  // morsel lane, so the overhead ratio compares timings taken back to back
  // (host frequency drift between bench sections would otherwise dominate
  // the few-percent effect being measured).
  double join_overhead_base_seconds = 0;
  double fused_overhead_base_seconds = 0;
};

// The unfused pipeline exactly as the miner ran it before the fused operator:
// hash join, row-at-a-time span recompute + prune, then dedup.
rel::Table UnfusedPipeline(const rel::Table& left, const rel::Table& right,
                           const rel::JoinSpec& spec,
                           const RealizationJoinSpec& rspec,
                           bool reference_kernels) {
  rel::Table joined =
      reference_kernels
          ? MustTable(rel::ReferenceHashJoin(left, right, spec), "ref join")
          : MustTable(rel::HashJoin(left, right, spec), "hash join");
  const size_t n = rspec.num_left_vars;
  rel::Table realization(VarSchema(n + 1));
  std::vector<int64_t> row(n + 3);
  for (size_t r = 0; r < joined.num_rows(); ++r) {
    int64_t t = joined.column(n + 4).Int64At(r);
    int64_t tmin = std::min(joined.column(n).Int64At(r), t);
    int64_t tmax = std::max(joined.column(n + 1).Int64At(r), t);
    if (tmax - tmin > rspec.max_span) continue;
    for (size_t c = 0; c < n; ++c) row[c] = joined.column(c).Int64At(r);
    row[n] = joined.column(n + 3).Int64At(r);  // fresh target binding
    row[n + 1] = tmin;
    row[n + 2] = tmax;
    realization.AppendInt64Row(row);
  }
  return ReferenceDedupKeepTightest(realization, n + 1);
}

SizeResult RunSize(size_t rows) {
  SizeResult out;
  out.rows = rows;

  // Join fan-out of ~4 matches per probe, like a mid-expansion realization
  // table meeting a popular abstract action.
  const int64_t domain = std::max<int64_t>(4, static_cast<int64_t>(rows) / 4);
  Rng rng(911 + rows);
  rel::Table left = RandomRealizationTable(&rng, rows, domain);
  rel::Table right = RandomActionTable(&rng, rows, domain);

  // Fresh-target extension with distinctness on every variable, span pruning,
  // and dedup — the full fused operator.
  RealizationJoinSpec rspec;
  rspec.num_left_vars = kNumVars;
  rspec.glue_source_col = 0;
  rspec.glue_target_col = -1;
  for (size_t k = 0; k < kNumVars; ++k) rspec.distinct_from_target.push_back(k);
  rspec.max_span = kHorizon;
  rspec.dedup_keep_tightest = true;

  rel::JoinSpec spec;
  spec.equal_cols.push_back({rspec.glue_source_col, 0});
  for (size_t k : rspec.distinct_from_target) spec.not_equal_cols.push_back({k, 1});

  // Raw equi-join kernel: columnar vs multimap reference, identical bags.
  rel::Table columnar_join = MustTable(rel::HashJoin(left, right, spec), "hash join");
  rel::Table reference_join =
      MustTable(rel::ReferenceHashJoin(left, right, spec), "ref join");
  Require(SortedRowList(columnar_join) == SortedRowList(reference_join),
          "HashJoin vs ReferenceHashJoin bag equality");
  out.join_output_rows = columnar_join.num_rows();
  out.hash_join_columnar_seconds = MeasureBest([&] {
    rel::Table t = MustTable(rel::HashJoin(left, right, spec), "hash join");
  });
  out.hash_join_reference_seconds = MeasureBest([&] {
    rel::Table t = MustTable(rel::ReferenceHashJoin(left, right, spec), "ref join");
  });

  // Fused operator vs the old materialize-everything pipeline.
  rel::Table fused = MustTable(
      JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec), "fused");
  rel::Table unfused =
      UnfusedPipeline(left, right, spec, rspec, /*reference_kernels=*/true);
  Require(SortedAssignmentWidths(fused) == SortedAssignmentWidths(unfused),
          "fused vs unfused assignment/span agreement");
  out.fused_output_rows = fused.num_rows();
  out.fused_seconds = MeasureBest([&] {
    rel::Table t = MustTable(
        JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec), "fused");
  });
  out.unfused_seconds = MeasureBest([&] {
    rel::Table t =
        UnfusedPipeline(left, right, spec, rspec, /*reference_kernels=*/true);
  });

  // Probe lanes: the probe phase of the equi-join (bucket resolution + chain
  // walk + predicate + match collection) at batch width 1 — the
  // pre-vectorization scalar loop — vs the default prefetched batch width.
  // Phase times come from the kernel's own KernelProfile hook; inside a
  // whole-join time the probe delta is amortized against hashing, build, and
  // output assembly. Reps are interleaved so clock drift between measurement
  // blocks cancels, and both lanes are checked byte-identical to the default
  // join output before timing.
  const uint64_t join_digest = TableDigest(columnar_join);
  {
    rel::KernelProfile prof;
    rel::MorselPolicy scalar_policy;
    scalar_policy.probe_batch = 1;
    scalar_policy.profile = &prof;
    rel::MorselPolicy vector_policy;  // defaults: serial, probe_batch = 8
    vector_policy.profile = &prof;
    Require(TableDigest(MustTable(rel::HashJoin(left, right, spec,
                                                scalar_policy),
                                  "scalar join")) == join_digest,
            "scalar probe lane identity");
    double sb = std::numeric_limits<double>::max(), vb = sb;
    for (int rep = 0; rep < kReps; ++rep) {
      {
        rel::Table x =
            MustTable(rel::HashJoin(left, right, spec, scalar_policy),
                      "scalar");
        sb = std::min(sb, prof.probe_seconds);
      }
      {
        rel::Table x = MustTable(
            rel::HashJoin(left, right, spec, vector_policy), "vector");
        vb = std::min(vb, prof.probe_seconds);
      }
    }
    out.probe_scalar_seconds = sb;
    out.probe_vectorized_seconds = vb;
  }

  // Morsel lanes: the full join kernels under a thread pool, checked
  // byte-identical to the serial output at every thread count before timing.
  const uint64_t fused_digest = TableDigest(fused);

  // Single-thread overhead, measured as interleaved pairs: a 1-thread pool
  // dispatches to the same serial code path, so any steady-state ratio above
  // 1.0 is morsel-machinery cost (scheduler claims in the hash pass), and
  // alternating the two lanes rep by rep cancels clock drift.
  {
    ThreadPool pool(1);
    rel::MorselPolicy mp;
    mp.pool = &pool;
    Require(TableDigest(MustTable(rel::HashJoin(left, right, spec, mp),
                                  "join t1")) == join_digest,
            "morsel join identity at 1 thread");
    Require(TableDigest(MustTable(
                JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec,
                                 mp),
                "fused t1")) == fused_digest,
            "morsel fused identity at 1 thread");
    double jb = std::numeric_limits<double>::max(), jt = jb, fb = jb, ft = jb;
    for (int rep = 0; rep < kReps; ++rep) {
      {
        Timer t;
        rel::Table x = MustTable(rel::HashJoin(left, right, spec), "join");
        jb = std::min(jb, t.ElapsedSeconds());
      }
      {
        Timer t;
        rel::Table x =
            MustTable(rel::HashJoin(left, right, spec, mp), "join t1");
        jt = std::min(jt, t.ElapsedSeconds());
      }
      {
        Timer t;
        rel::Table x = MustTable(
            JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec),
            "fused");
        fb = std::min(fb, t.ElapsedSeconds());
      }
      {
        Timer t;
        rel::Table x = MustTable(
            JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec, mp),
            "fused t1");
        ft = std::min(ft, t.ElapsedSeconds());
      }
    }
    out.join_overhead_base_seconds = jb;
    out.fused_overhead_base_seconds = fb;
    out.join_morsel_seconds[0] = jt;
    out.fused_morsel_seconds[0] = ft;
  }

  for (size_t ti = 1; ti < kNumMorselLanes; ++ti) {
    ThreadPool pool(kMorselThreads[ti]);
    rel::MorselPolicy mp;
    mp.pool = &pool;
    rel::Table mjoin =
        MustTable(rel::HashJoin(left, right, spec, mp), "morsel join");
    Require(TableDigest(mjoin) == join_digest, "morsel join identity");
    out.join_morsel_seconds[ti] = MeasureBest([&] {
      rel::Table t =
          MustTable(rel::HashJoin(left, right, spec, mp), "morsel join");
    });
    rel::Table mfused = MustTable(
        JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec, mp),
        "morsel fused");
    Require(TableDigest(mfused) == fused_digest, "morsel fused identity");
    out.fused_morsel_seconds[ti] = MeasureBest([&] {
      rel::Table t = MustTable(
          JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec, mp),
          "morsel fused");
    });
  }

  // Dedup kernel in isolation, on a duplicate-heavy realization table.
  rel::Table dups = RandomRealizationTable(
      &rng, rows, std::max<int64_t>(4, static_cast<int64_t>(rows) / 64));
  rel::Table flat_dedup = DedupKeepTightest(dups, kNumVars);
  rel::Table ref_dedup = ReferenceDedupKeepTightest(dups, kNumVars);
  Require(SortedRowList(flat_dedup) == SortedRowList(ref_dedup),
          "flat vs reference dedup equality");
  out.dedup_flat_seconds =
      MeasureBest([&] { rel::Table t = DedupKeepTightest(dups, kNumVars); });
  out.dedup_reference_seconds = MeasureBest(
      [&] { rel::Table t = ReferenceDedupKeepTightest(dups, kNumVars); });
  return out;
}

double Speedup(double reference, double optimized) {
  return optimized > 0 ? reference / optimized : 0;
}

void WriteJson(const std::vector<SizeResult>& results, const char* path) {
  std::ofstream file(path);
  JsonWriter w(&file, /*pretty=*/true);
  w.BeginObject();
  w.Key("bench");
  w.String("join_kernels");
  w.Key("num_vars");
  w.Int(static_cast<int64_t>(kNumVars));
  w.Key("reps");
  w.Int(kReps);
  w.Key("probe_batch_width");
  w.Int(static_cast<int64_t>(rel::kProbeBatchWidth));
  w.Key("morsel_threads");
  w.BeginArray();
  for (size_t t : kMorselThreads) w.Int(static_cast<int64_t>(t));
  w.EndArray();
  w.Key("sizes");
  w.BeginArray();
  for (const SizeResult& r : results) {
    w.BeginObject();
    w.Key("rows");
    w.Int(static_cast<int64_t>(r.rows));
    w.Key("join_output_rows");
    w.Int(static_cast<int64_t>(r.join_output_rows));
    w.Key("fused_output_rows");
    w.Int(static_cast<int64_t>(r.fused_output_rows));
    w.Key("hash_join_columnar_seconds");
    w.Number(r.hash_join_columnar_seconds);
    w.Key("hash_join_reference_seconds");
    w.Number(r.hash_join_reference_seconds);
    w.Key("hash_join_speedup");
    w.Number(Speedup(r.hash_join_reference_seconds, r.hash_join_columnar_seconds));
    w.Key("fused_seconds");
    w.Number(r.fused_seconds);
    w.Key("unfused_seconds");
    w.Number(r.unfused_seconds);
    w.Key("fused_speedup");
    w.Number(Speedup(r.unfused_seconds, r.fused_seconds));
    w.Key("dedup_flat_seconds");
    w.Number(r.dedup_flat_seconds);
    w.Key("dedup_reference_seconds");
    w.Number(r.dedup_reference_seconds);
    w.Key("dedup_speedup");
    w.Number(Speedup(r.dedup_reference_seconds, r.dedup_flat_seconds));
    w.Key("probe_scalar_seconds");
    w.Number(r.probe_scalar_seconds);
    w.Key("probe_vectorized_seconds");
    w.Number(r.probe_vectorized_seconds);
    w.Key("probe_vectorized_speedup");
    w.Number(Speedup(r.probe_scalar_seconds, r.probe_vectorized_seconds));
    w.Key("morsel_lanes");
    w.BeginArray();
    for (size_t ti = 0; ti < kNumMorselLanes; ++ti) {
      w.BeginObject();
      w.Key("threads");
      w.Int(static_cast<int64_t>(kMorselThreads[ti]));
      w.Key("join_seconds");
      w.Number(r.join_morsel_seconds[ti]);
      w.Key("fused_seconds");
      w.Number(r.fused_morsel_seconds[ti]);
      w.EndObject();
    }
    w.EndArray();
    // Morsel machinery cost at one thread relative to the serial lane
    // measured in alternation with it (the <= 5% acceptance bar); > 1 means
    // overhead.
    w.Key("join_morsel_t1_overhead");
    w.Number(r.join_overhead_base_seconds > 0
                 ? r.join_morsel_seconds[0] / r.join_overhead_base_seconds
                 : 0);
    w.Key("fused_morsel_t1_overhead");
    w.Number(r.fused_overhead_base_seconds > 0
                 ? r.fused_morsel_seconds[0] / r.fused_overhead_base_seconds
                 : 0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  file << "\n";
}

int Main(int argc, char** argv) {
  std::vector<size_t> sizes = {1000, 10000, 50000};
  if (argc > 1) sizes = {bench::SizeArg(argc, argv, 10000)};
  const char* out_path = argc > 2 ? argv[2] : "BENCH_join.json";

  std::vector<SizeResult> results;
  for (size_t rows : sizes) {
    SizeResult r = RunSize(rows);
    std::printf(
        "rows=%zu join: columnar %.4fs vs reference %.4fs (%.1fx) | "
        "fused %.4fs vs unfused %.4fs (%.1fx) | dedup %.4fs vs %.4fs (%.1fx)\n",
        r.rows, r.hash_join_columnar_seconds, r.hash_join_reference_seconds,
        Speedup(r.hash_join_reference_seconds, r.hash_join_columnar_seconds),
        r.fused_seconds, r.unfused_seconds,
        Speedup(r.unfused_seconds, r.fused_seconds), r.dedup_flat_seconds,
        r.dedup_reference_seconds,
        Speedup(r.dedup_reference_seconds, r.dedup_flat_seconds));
    std::printf(
        "         probe: scalar %.4fs vs vectorized %.4fs (%.2fx) | "
        "morsel join t1/t2/t4 %.4f/%.4f/%.4fs (t1 overhead %.2fx) | "
        "morsel fused %.4f/%.4f/%.4fs\n",
        r.probe_scalar_seconds, r.probe_vectorized_seconds,
        Speedup(r.probe_scalar_seconds, r.probe_vectorized_seconds),
        r.join_morsel_seconds[0], r.join_morsel_seconds[1],
        r.join_morsel_seconds[2],
        r.join_overhead_base_seconds > 0
            ? r.join_morsel_seconds[0] / r.join_overhead_base_seconds
            : 0,
        r.fused_morsel_seconds[0], r.fused_morsel_seconds[1],
        r.fused_morsel_seconds[2]);
    results.push_back(r);
  }
  WriteJson(results, out_path);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace wiclean

int main(int argc, char** argv) { return wiclean::Main(argc, argv); }
