// Timed differential harness for the columnar join kernels: the flat
// open-addressing HashJoin vs the preserved multimap ReferenceHashJoin, the
// fused JoinRealizations operator vs the unfused join + span-prune + dedup
// pipeline it replaced, and the flat DedupKeepTightest vs its row-
// materializing reference. Every timed pair is also checked for agreement, so
// a regression in either speed or semantics shows up here.
//
// Usage: join_kernels [rows] [output.json]
//   rows         single size to run (default: 1000, 10000, 50000)
//   output.json  result file (default: BENCH_join.json in the CWD)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/realization_join.h"
#include "relational/ops.h"
#include "relational/reference_join.h"
#include "relational/table.h"

namespace wiclean {
namespace {

namespace rel = ::wiclean::relational;

constexpr size_t kNumVars = 3;
constexpr int64_t kHorizon = 100000;
constexpr int kReps = 3;

rel::Schema VarSchema(size_t num_vars) {
  rel::Schema schema;
  for (size_t i = 0; i < num_vars; ++i) {
    schema.AddField(rel::Field{"v" + std::to_string(i), rel::DataType::kInt64});
  }
  schema.AddField(rel::Field{"tmin", rel::DataType::kInt64});
  schema.AddField(rel::Field{"tmax", rel::DataType::kInt64});
  return schema;
}

rel::Table RandomRealizationTable(Rng* rng, size_t rows, int64_t domain) {
  rel::Table t(VarSchema(kNumVars));
  std::vector<int64_t> row(kNumVars + 2);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < kNumVars; ++c) {
      row[c] = static_cast<int64_t>(rng->NextBelow(domain));
    }
    int64_t t0 = static_cast<int64_t>(rng->NextBelow(kHorizon));
    row[kNumVars] = t0;
    row[kNumVars + 1] = t0 + static_cast<int64_t>(rng->NextBelow(kHorizon));
    t.AppendInt64Row(row);
  }
  return t;
}

rel::Table RandomActionTable(Rng* rng, size_t rows, int64_t domain) {
  rel::Schema schema;
  schema.AddField(rel::Field{"u", rel::DataType::kInt64});
  schema.AddField(rel::Field{"v", rel::DataType::kInt64});
  schema.AddField(rel::Field{"t", rel::DataType::kInt64});
  rel::Table t(schema);
  for (size_t r = 0; r < rows; ++r) {
    t.AppendInt64Row({static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(domain)),
                      static_cast<int64_t>(rng->NextBelow(kHorizon))});
  }
  return t;
}

// Best-of-kReps wall time for one kernel invocation.
template <typename Fn>
double MeasureBest(Fn&& fn) {
  double best = std::numeric_limits<double>::max();
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

std::vector<std::string> SortedRowList(const rel::Table& t) {
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (const rel::Value& v : t.RowValues(r)) key += v.ToString() + "|";
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Candidate order differs between the two join engines, so dedup tie-breaks
// (same span width, different [tmin, tmax]) can keep different
// representatives. The order-invariant signature is (variables, span width).
std::vector<std::string> SortedAssignmentWidths(const rel::Table& t) {
  const size_t n = t.num_columns() - 2;
  std::vector<std::string> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (size_t c = 0; c < n; ++c) {
      key += std::to_string(t.column(c).Int64At(r)) + "|";
    }
    key += std::to_string(t.column(n + 1).Int64At(r) - t.column(n).Int64At(r));
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "self-check failed: %s\n", what);
    std::exit(1);
  }
}

rel::Table MustTable(Result<rel::Table> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

struct SizeResult {
  size_t rows = 0;
  size_t join_output_rows = 0;
  size_t fused_output_rows = 0;
  double hash_join_columnar_seconds = 0;
  double hash_join_reference_seconds = 0;
  double fused_seconds = 0;
  double unfused_seconds = 0;
  double dedup_flat_seconds = 0;
  double dedup_reference_seconds = 0;
};

// The unfused pipeline exactly as the miner ran it before the fused operator:
// hash join, row-at-a-time span recompute + prune, then dedup.
rel::Table UnfusedPipeline(const rel::Table& left, const rel::Table& right,
                           const rel::JoinSpec& spec,
                           const RealizationJoinSpec& rspec,
                           bool reference_kernels) {
  rel::Table joined =
      reference_kernels
          ? MustTable(rel::ReferenceHashJoin(left, right, spec), "ref join")
          : MustTable(rel::HashJoin(left, right, spec), "hash join");
  const size_t n = rspec.num_left_vars;
  rel::Table realization(VarSchema(n + 1));
  std::vector<int64_t> row(n + 3);
  for (size_t r = 0; r < joined.num_rows(); ++r) {
    int64_t t = joined.column(n + 4).Int64At(r);
    int64_t tmin = std::min(joined.column(n).Int64At(r), t);
    int64_t tmax = std::max(joined.column(n + 1).Int64At(r), t);
    if (tmax - tmin > rspec.max_span) continue;
    for (size_t c = 0; c < n; ++c) row[c] = joined.column(c).Int64At(r);
    row[n] = joined.column(n + 3).Int64At(r);  // fresh target binding
    row[n + 1] = tmin;
    row[n + 2] = tmax;
    realization.AppendInt64Row(row);
  }
  return ReferenceDedupKeepTightest(realization, n + 1);
}

SizeResult RunSize(size_t rows) {
  SizeResult out;
  out.rows = rows;

  // Join fan-out of ~4 matches per probe, like a mid-expansion realization
  // table meeting a popular abstract action.
  const int64_t domain = std::max<int64_t>(4, static_cast<int64_t>(rows) / 4);
  Rng rng(911 + rows);
  rel::Table left = RandomRealizationTable(&rng, rows, domain);
  rel::Table right = RandomActionTable(&rng, rows, domain);

  // Fresh-target extension with distinctness on every variable, span pruning,
  // and dedup — the full fused operator.
  RealizationJoinSpec rspec;
  rspec.num_left_vars = kNumVars;
  rspec.glue_source_col = 0;
  rspec.glue_target_col = -1;
  for (size_t k = 0; k < kNumVars; ++k) rspec.distinct_from_target.push_back(k);
  rspec.max_span = kHorizon;
  rspec.dedup_keep_tightest = true;

  rel::JoinSpec spec;
  spec.equal_cols.push_back({rspec.glue_source_col, 0});
  for (size_t k : rspec.distinct_from_target) spec.not_equal_cols.push_back({k, 1});

  // Raw equi-join kernel: columnar vs multimap reference, identical bags.
  rel::Table columnar_join = MustTable(rel::HashJoin(left, right, spec), "hash join");
  rel::Table reference_join =
      MustTable(rel::ReferenceHashJoin(left, right, spec), "ref join");
  Require(SortedRowList(columnar_join) == SortedRowList(reference_join),
          "HashJoin vs ReferenceHashJoin bag equality");
  out.join_output_rows = columnar_join.num_rows();
  out.hash_join_columnar_seconds = MeasureBest([&] {
    rel::Table t = MustTable(rel::HashJoin(left, right, spec), "hash join");
  });
  out.hash_join_reference_seconds = MeasureBest([&] {
    rel::Table t = MustTable(rel::ReferenceHashJoin(left, right, spec), "ref join");
  });

  // Fused operator vs the old materialize-everything pipeline.
  rel::Table fused = MustTable(
      JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec), "fused");
  rel::Table unfused =
      UnfusedPipeline(left, right, spec, rspec, /*reference_kernels=*/true);
  Require(SortedAssignmentWidths(fused) == SortedAssignmentWidths(unfused),
          "fused vs unfused assignment/span agreement");
  out.fused_output_rows = fused.num_rows();
  out.fused_seconds = MeasureBest([&] {
    rel::Table t = MustTable(
        JoinRealizations(left, right, VarSchema(kNumVars + 1), rspec), "fused");
  });
  out.unfused_seconds = MeasureBest([&] {
    rel::Table t =
        UnfusedPipeline(left, right, spec, rspec, /*reference_kernels=*/true);
  });

  // Dedup kernel in isolation, on a duplicate-heavy realization table.
  rel::Table dups = RandomRealizationTable(
      &rng, rows, std::max<int64_t>(4, static_cast<int64_t>(rows) / 64));
  rel::Table flat_dedup = DedupKeepTightest(dups, kNumVars);
  rel::Table ref_dedup = ReferenceDedupKeepTightest(dups, kNumVars);
  Require(SortedRowList(flat_dedup) == SortedRowList(ref_dedup),
          "flat vs reference dedup equality");
  out.dedup_flat_seconds =
      MeasureBest([&] { rel::Table t = DedupKeepTightest(dups, kNumVars); });
  out.dedup_reference_seconds = MeasureBest(
      [&] { rel::Table t = ReferenceDedupKeepTightest(dups, kNumVars); });
  return out;
}

double Speedup(double reference, double optimized) {
  return optimized > 0 ? reference / optimized : 0;
}

void WriteJson(const std::vector<SizeResult>& results, const char* path) {
  std::ofstream file(path);
  JsonWriter w(&file, /*pretty=*/true);
  w.BeginObject();
  w.Key("bench");
  w.String("join_kernels");
  w.Key("num_vars");
  w.Int(static_cast<int64_t>(kNumVars));
  w.Key("reps");
  w.Int(kReps);
  w.Key("sizes");
  w.BeginArray();
  for (const SizeResult& r : results) {
    w.BeginObject();
    w.Key("rows");
    w.Int(static_cast<int64_t>(r.rows));
    w.Key("join_output_rows");
    w.Int(static_cast<int64_t>(r.join_output_rows));
    w.Key("fused_output_rows");
    w.Int(static_cast<int64_t>(r.fused_output_rows));
    w.Key("hash_join_columnar_seconds");
    w.Number(r.hash_join_columnar_seconds);
    w.Key("hash_join_reference_seconds");
    w.Number(r.hash_join_reference_seconds);
    w.Key("hash_join_speedup");
    w.Number(Speedup(r.hash_join_reference_seconds, r.hash_join_columnar_seconds));
    w.Key("fused_seconds");
    w.Number(r.fused_seconds);
    w.Key("unfused_seconds");
    w.Number(r.unfused_seconds);
    w.Key("fused_speedup");
    w.Number(Speedup(r.unfused_seconds, r.fused_seconds));
    w.Key("dedup_flat_seconds");
    w.Number(r.dedup_flat_seconds);
    w.Key("dedup_reference_seconds");
    w.Number(r.dedup_reference_seconds);
    w.Key("dedup_speedup");
    w.Number(Speedup(r.dedup_reference_seconds, r.dedup_flat_seconds));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  file << "\n";
}

int Main(int argc, char** argv) {
  std::vector<size_t> sizes = {1000, 10000, 50000};
  if (argc > 1) sizes = {bench::SizeArg(argc, argv, 10000)};
  const char* out_path = argc > 2 ? argv[2] : "BENCH_join.json";

  std::vector<SizeResult> results;
  for (size_t rows : sizes) {
    SizeResult r = RunSize(rows);
    std::printf(
        "rows=%zu join: columnar %.4fs vs reference %.4fs (%.1fx) | "
        "fused %.4fs vs unfused %.4fs (%.1fx) | dedup %.4fs vs %.4fs (%.1fx)\n",
        r.rows, r.hash_join_columnar_seconds, r.hash_join_reference_seconds,
        Speedup(r.hash_join_reference_seconds, r.hash_join_columnar_seconds),
        r.fused_seconds, r.unfused_seconds,
        Speedup(r.unfused_seconds, r.fused_seconds), r.dedup_flat_seconds,
        r.dedup_reference_seconds,
        Speedup(r.dedup_reference_seconds, r.dedup_flat_seconds));
    results.push_back(r);
  }
  WriteJson(results, out_path);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace wiclean

int main(int argc, char** argv) { return wiclean::Main(argc, argv); }
