// Table 1: the refinement-heuristic grid — window multiplier Y and threshold
// reduction X per round, vs running time / precision / recall / F1 against
// the expert pattern list.
//
// Paper rows (soccer):   (2.0x, 20%) -> 2.0 min, P 1.00, R 0.84, F1 0.91  (WC)
//                        (1.0x, 20%) -> 1.2 min, P 0.88, R 0.68, F1 0.77
//                        (2.0x,  0%) -> 1.2 min, P 1.00, R 0.75, F1 0.86
//                        (1.5x, 10%) -> 3.2 min, P 1.00, R 0.68, F1 0.81
//                        (3.0x, 40%) -> 1.5 min, P 0.75, R 0.88, F1 0.81
//
// Expected shape: the balanced (2.0x, 20%) policy yields the best F1; tiny
// steps terminate early (lower recall, and with many rounds, more time);
// aggressive steps finish fast but skip intermediate threshold levels.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/window_search.h"
#include "eval/quality.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t seeds = SizeArg(argc, argv, 400);
  SynthWorld world = MakeSoccerWorld(seeds, /*rng_seed=*/31, /*years=*/1);

  std::vector<ExpertPattern> experts;
  for (const ExpertPattern& e : world.ground_truth.expert_patterns) {
    if (e.domain == "soccer") experts.push_back(e);
  }

  struct Row {
    double multiplier;
    double reduction;
  };
  const Row rows[] = {
      {2.0, 0.20}, {1.0, 0.20}, {2.0, 0.00}, {1.5, 0.10}, {3.0, 0.40}};

  std::printf(
      "Table 1: refinement-heuristic grid (soccer, %zu seeds)\n"
      "paper best row: (2.0x, 20%%) with F1 0.91\n\n",
      seeds);
  std::printf("%-12s %10s %8s %10s %8s %8s %6s\n", "(w, tau)", "time(s)",
              "rounds", "precision", "recall", "F1", "mined");

  for (const Row& row : rows) {
    WindowSearchOptions options;
    options.initial_threshold = 0.8;
    options.refine.window_multiplier = row.multiplier;
    options.refine.threshold_reduction = row.reduction;
    options.miner.max_abstraction_lift = 1;
    options.miner.max_pattern_actions = 6;
    options.mine_relative = false;

    WindowSearch search(world.registry.get(), &world.store, options);
    Timer timer;
    Result<WindowSearchResult> result =
        search.Run(world.types.soccer_player, 0, kSecondsPerYear);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    PatternQualityReport quality =
        EvaluatePatternQuality(result->patterns, experts, *world.taxonomy);

    char label[32];
    std::snprintf(label, sizeof(label), "%.1fx, %2.0f%%", row.multiplier,
                  row.reduction * 100);
    std::printf("%-12s %10.3f %8zu %10.2f %8.2f %8.2f %6zu\n", label, seconds,
                result->rounds.size(), quality.precision, quality.recall,
                quality.f1, quality.mined_total);
  }
  return 0;
}
