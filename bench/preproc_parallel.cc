// Fig 4(d)-style harness for the *preprocessing* column: dump parse/diff
// time, sequential vs the staged parallel ingestion pipeline.
//
// The paper's dominant preprocessing cost is turning raw revision texts into
// the structured edit log (§6.1/§6.2 "crawl and parse"); this harness times
// exactly that step — PageSource -> parse/diff workers -> ordered ActionSink
// — at 1, 2, 4 and 8 workers, and prints where the time goes per stage
// (read / parse+diff / merge; parse is summed across workers).
//
// IMPORTANT CAVEAT (same as bench/fig4d_parallel): this reproduction host
// may have a single physical core, in which case the multi-thread columns
// measure pipeline overhead rather than hardware parallelism — expect ~1.0x
// here and real speedups on multi-core hardware. Per-page parse/diff work is
// independent, so the decomposition scales with cores.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t scale = SizeArg(argc, argv, 800);
  const size_t seed_sizes[] = {scale / 4, scale / 2, scale};
  const size_t thread_counts[] = {1, 2, 4, 8};

  std::printf(
      "Preprocessing (dump parse/diff) time: staged pipeline, 1-8 workers\n"
      "one year of synthetic soccer history; times in seconds\n"
      "host hardware concurrency: %u (single-core hosts measure overhead "
      "only)\n\n",
      std::thread::hardware_concurrency());
  std::printf("%-16s %8s %10s %10s %10s %10s %10s\n", "seeds(actions)",
              "threads", "wall", "read", "parse*", "merge", "speedup");

  for (size_t seeds : seed_sizes) {
    SynthWorld world = MakeSoccerWorld(seeds);
    double serial = 0.0;
    for (size_t threads : thread_counts) {
      IngestOptions options;
      options.num_threads = threads;
      RevisionStore store;
      IngestStats stats;
      double wall = TimeDumpPreprocessing(world, 0, kSecondsPerYear, &store,
                                          options, &stats);
      if (threads == 1) serial = wall;
      char label[64];
      std::snprintf(label, sizeof(label), "%zu (%zu)", seeds, stats.actions);
      std::printf("%-16s %8zu %10.3f %10.3f %10.3f %10.3f %9.2fx\n", label,
                  threads, wall, stats.read_seconds, stats.parse_seconds,
                  stats.merge_seconds, wall > 0 ? serial / wall : 0.0);
    }
    std::printf("\n");
  }
  std::printf("* parse time is summed across workers; it can exceed wall.\n");
  return 0;
}
