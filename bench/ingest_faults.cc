// Fault-injection harness for degraded-mode ingestion (dump/fault_injection.h
// + IngestOptions::on_error). Self-verifying: exits non-zero unless every
// differential property holds, so it doubles as a CI gate.
//
// Properties asserted, at 1 and 4 worker threads:
//   1. kSkip over a clean dump == kStrict over the same dump, zero skips.
//   2. kSkip over a dump with injected bad *revisions* (duplicates, timestamp
//      rewinds, oversized, malformed, deep nesting) == the clean ingest, with
//      the per-reason skip counters matching exactly what was injected.
//   3. kSkip over byte-corrupted XML (garbage regions, mangled tags, a
//      truncated tail) == a clean ingest restricted to the surviving pages,
//      with region counters matching the fault plan.
//   4. kQuarantine matches kSkip's output and captures one record per skip.
//   5. kStrict over the corrupted dump fails (the historical contract).
//
// Every injected revision embeds a link to a *registered* entity, so a buggy
// policy that silently accepts bad input shows up as a store divergence, not
// just a counter mismatch.

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dump/fault_injection.h"
#include "dump/page_source.h"
#include "dump/pipeline.h"
#include "dump/quarantine.h"

using namespace wiclean;
using namespace wiclean::bench;

namespace {

void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
  }
}

/// Byte-exact serialization of a store's contents (same scheme as the
/// pipeline tests): equal fingerprints mean identical action logs.
std::string Fingerprint(const RevisionStore& store, size_t num_entities) {
  std::string out;
  for (size_t i = 0; i < num_entities; ++i) {
    const std::vector<Action>& log = store.LogOf(static_cast<EntityId>(i));
    if (log.empty()) continue;
    out += "e" + std::to_string(i) + ":";
    for (const Action& a : log) {
      out += (a.op == EditOp::kAdd ? "+" : "-");
      out += std::to_string(a.subject) + "," + a.relation + "," +
             std::to_string(a.object) + "@" + std::to_string(a.time) + ";";
    }
    out += "\n";
  }
  return out;
}

IngestStats IngestPages(std::vector<DumpPage> pages,
                        const EntityRegistry& registry,
                        const IngestOptions& options, RevisionStore* store) {
  VectorPageSource source(std::move(pages));
  RevisionStoreSink sink(store);
  Result<IngestStats> stats =
      RunIngestPipeline(&source, registry, &sink, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "FAIL: ingest error: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  return *stats;
}

std::string SerializePages(const std::vector<DumpPage>& pages) {
  std::ostringstream out;
  DumpWriter writer(&out);
  writer.Begin();
  for (const DumpPage& page : pages) writer.WritePage(page);
  Require(writer.End().ok(), "dump serialization");
  return out.str();
}

size_t TotalSkips(const IngestStats& stats) {
  size_t total = 0;
  for (size_t c : stats.skipped_by_reason) total += c;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t seeds = SizeArg(argc, argv, 120);
  const size_t thread_counts[] = {1, 4};

  SynthWorld world = MakeSoccerWorld(seeds, /*rng_seed=*/97);
  const size_t n = world.registry->size();
  Result<std::vector<DumpPage>> rendered =
      RenderDumpPages(world, 0, kSecondsPerYear);
  Require(rendered.ok(), "dump rendering");
  const std::vector<DumpPage> clean_pages = std::move(rendered).value();
  Require(!clean_pages.empty(), "non-empty corpus");
  const std::string clean_xml = SerializePages(clean_pages);

  size_t max_clean_rev = 0;
  for (const DumpPage& page : clean_pages) {
    for (const DumpRevision& rev : page.revisions) {
      max_clean_rev = std::max(max_clean_rev, rev.text.size());
    }
  }

  // Clean baseline (the historical strict path).
  RevisionStore clean_store;
  IngestStats clean_stats =
      IngestPages(clean_pages, *world.registry, IngestOptions{}, &clean_store);
  const std::string clean_fp = Fingerprint(clean_store, n);
  Require(clean_stats.actions > 0 && !clean_fp.empty(), "non-trivial corpus");
  std::printf("corpus: %zu pages, %zu revisions, %zu actions\n",
              clean_stats.pages, clean_stats.revisions, clean_stats.actions);

  IngestLimits limits;
  limits.max_revision_bytes = max_clean_rev;  // every clean revision passes
  limits.max_infobox_nesting_depth = 4;       // clean nesting is depth 1

  // Property 1: kSkip over clean input is a no-op policy change.
  for (size_t threads : thread_counts) {
    IngestOptions options;
    options.on_error = ErrorPolicy::kSkip;
    options.limits = limits;
    options.num_threads = threads;
    RevisionStore store;
    IngestStats stats =
        IngestPages(clean_pages, *world.registry, options, &store);
    Require(Fingerprint(store, n) == clean_fp, "kSkip == kStrict on clean");
    Require(TotalSkips(stats) == 0 && stats.pages_skipped == 0 &&
                stats.revisions_skipped == 0 && stats.regions_skipped == 0,
            "zero skips on clean input");
  }
  std::printf("clean-input no-op: OK\n");

  // Property 2: structured revision faults — every injected bad revision is
  // skipped, nothing else changes.
  FaultMix mix;
  mix.rng_seed = 1234;
  mix.duplicate_revisions = 3;
  mix.out_of_order_revisions = 3;
  mix.oversized_revisions = 3;
  mix.malformed_revisions = 3;
  mix.deep_nesting_revisions = 3;
  mix.oversized_bytes = max_clean_rev + 1024;
  mix.nesting_depth = 8;
  mix.poison_link_target = world.registry->Get(0).name;
  FaultInjectingPageSource faulted(clean_pages, mix);
  Require(faulted.summary().injected_revisions == 15, "all faults injected");

  for (size_t threads : thread_counts) {
    IngestOptions options;
    options.on_error = ErrorPolicy::kSkip;
    options.limits = limits;
    options.num_threads = threads;
    RevisionStore store;
    IngestStats stats =
        IngestPages(faulted.pages(), *world.registry, options, &store);
    Require(Fingerprint(store, n) == clean_fp,
            "kSkip over injected revisions == clean ingest");
    Require(stats.revisions_skipped == faulted.summary().injected_revisions,
            "revisions_skipped == injected count");
    Require(stats.skipped_by_reason == faulted.summary().expected_skips,
            "per-reason counters == injected mix");
    Require(stats.pages_skipped == 0 && stats.regions_skipped == 0,
            "revision faults drop no pages or regions");
  }
  std::printf("structured faults (%zu injected): OK [%s]\n",
              faulted.summary().injected_revisions,
              FormatSkipCounts(faulted.summary().expected_skips).c_str());

  // Property 3: byte-level XML corruption — survivors ingest exactly as a
  // clean dump of just those pages would.
  XmlFaultMix xml_mix;
  xml_mix.rng_seed = 99;
  xml_mix.garbage_regions = 2;
  xml_mix.mangled_pages = 2;
  xml_mix.truncate_tail = true;
  Result<XmlFaultPlan> corrupted = CorruptDumpXml(clean_xml, xml_mix);
  Require(corrupted.ok(), "xml corruption plan");
  CorruptedDumpStream stream(std::move(corrupted).value());

  std::set<std::string> lost(stream.plan().lost_titles.begin(),
                             stream.plan().lost_titles.end());
  Require(lost.size() == 3, "distinct lost pages");
  std::vector<DumpPage> survivors;
  for (const DumpPage& page : clean_pages) {
    if (lost.count(page.title) == 0) survivors.push_back(page);
  }
  RevisionStore survivor_store;
  IngestStats survivor_stats = IngestPages(survivors, *world.registry,
                                           IngestOptions{}, &survivor_store);
  const std::string survivor_fp = Fingerprint(survivor_store, n);
  Require(survivor_fp != clean_fp, "lost pages change the store");

  // 5: strict over corrupted bytes must fail fast.
  {
    RevisionStore store;
    Result<IngestStats> strict =
        IngestDump(stream.stream(), *world.registry, &store, IngestOptions{});
    Require(!strict.ok(), "kStrict fails on corrupted dump");
  }

  std::string skip_fp;
  for (size_t threads : thread_counts) {
    IngestOptions options;
    options.on_error = ErrorPolicy::kSkip;
    options.num_threads = threads;
    RevisionStore store;
    stream.Rewind();
    Result<IngestStats> stats =
        IngestDump(stream.stream(), *world.registry, &store, options);
    Require(stats.ok(), "kSkip ingests corrupted dump");
    skip_fp = Fingerprint(store, n);
    Require(skip_fp == survivor_fp,
            "kSkip over corrupted dump == clean ingest of survivors");
    Require(stats->regions_skipped == stream.plan().expected_regions,
            "regions_skipped == planned regions");
    Require(stats->skipped_by_reason[static_cast<size_t>(
                SkipReason::kTruncation)] == stream.plan().expected_truncations,
            "truncation counted as DataLoss region");
    Require(stats->pages == survivor_stats.pages, "surviving page count");
  }
  std::printf("xml corruption (%zu regions, %zu lost pages): OK\n",
              stream.plan().expected_regions, lost.size());

  // Property 4: kQuarantine == kSkip plus one record per skip.
  for (size_t threads : thread_counts) {
    IngestOptions options;
    options.on_error = ErrorPolicy::kQuarantine;
    options.num_threads = threads;
    MemoryQuarantineSink quarantine;
    options.quarantine = &quarantine;
    RevisionStore store;
    stream.Rewind();
    Result<IngestStats> stats =
        IngestDump(stream.stream(), *world.registry, &store, options);
    Require(stats.ok(), "kQuarantine ingests corrupted dump");
    Require(Fingerprint(store, n) == skip_fp, "kQuarantine output == kSkip");
    Require(stats->quarantined == stream.plan().expected_regions,
            "one quarantine record per region");
    Require(quarantine.records().size() == stats->quarantined,
            "sink saw every record");
    for (const QuarantineRecord& record : quarantine.records()) {
      Require(!record.raw.empty(), "quarantined raw bytes captured");
    }
  }
  std::printf("quarantine channel: OK\n");

  std::printf("\nall fault-injection properties hold at 1 and 4 threads\n");
  return 0;
}
