// Ablation: the search-level validation stages and miner-level structural
// constraints that DESIGN.md section 6 calls out. Each row disables one
// mechanism and reports pattern quality against the soccer expert list:
//
//   full            everything on (the defaults)
//   -tighten        no window tightening / localization check
//   -phi            no partition-correlation validation
//   -seed-focus     multiple seed-comparable variables allowed
//   -span-prune     no realization-span pruning during expansion
//
// Expected shape: each mechanism protects precision (or tractability);
// disabling it admits window/conjunction artifacts or slows mining.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/window_search.h"
#include "eval/quality.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  // Line-buffer stdout so partial results survive an OOM kill of an
  // explosive configuration.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  size_t seeds = SizeArg(argc, argv, 200);
  SynthWorld world = MakeSoccerWorld(seeds, /*rng_seed=*/57);
  std::vector<ExpertPattern> experts;
  for (const ExpertPattern& e : world.ground_truth.expert_patterns) {
    if (e.domain == "soccer") experts.push_back(e);
  }

  struct Row {
    const char* name;
    bool tighten;
    bool phi;
    bool seed_focus;
    bool span_prune;
  };
  const Row rows[] = {
      {"full", true, true, true, true},
      {"-tighten", false, true, true, true},
      {"-phi", true, false, true, true},
      {"-seed-focus", true, true, false, true},
      {"-span-prune", true, true, true, false},
  };

  std::printf(
      "Ablation: validation stages and structural constraints (soccer, %zu "
      "seeds)\n\n",
      seeds);
  std::printf("%-12s %10s %10s %8s %8s %7s\n", "config", "time(s)",
              "precision", "recall", "F1", "mined");

  for (const Row& row : rows) {
    WindowSearchOptions options;
    options.initial_threshold = 0.8;
    options.miner.max_abstraction_lift = 1;
    options.miner.max_pattern_actions = 4;
    options.mine_relative = false;
    // Bound the search for comparability: without these caps the *disabled*
    // configurations genuinely explode (that is what the mechanisms are
    // for), taking the harness down with them.
    options.max_window_width = 8 * kSecondsPerWeek;
    options.subwindow_validation = row.tighten;
    options.leverage_validation = row.phi;
    options.miner.allow_multiple_seed_vars = !row.seed_focus;
    if (!row.span_prune) {
      options.miner.max_realization_span = 100 * kSecondsPerYear;
    }

    WindowSearch search(world.registry.get(), &world.store, options);
    Timer timer;
    Result<WindowSearchResult> result =
        search.Run(world.types.soccer_player, 0, kSecondsPerYear);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name,
                   result.status().ToString().c_str());
      continue;
    }
    PatternQualityReport quality =
        EvaluatePatternQuality(result->patterns, experts, *world.taxonomy);
    std::printf("%-12s %10.3f %10.2f %8.2f %8.2f %7zu\n", row.name, seconds,
                quality.precision, quality.recall, quality.f1,
                quality.mined_total);
  }
  return 0;
}
