// Serving-layer benchmark: replay the three-domain corpus through the
// incremental online detector and compare against the batch sweep.
//
// Measures, into BENCH_serve.json:
//   - batch sweep wall time (PartialUpdateDetector over every snapshot
//     pattern, the offline baseline),
//   - online replay at 1 and 4 feed threads: actions/sec and per-alert
//     finalize latency (mean/max),
//   - dispatch cost per event: inverted PatternIndex lookup vs scanning
//     every pattern action (the index must win on this corpus),
// and self-verifies that the online alert set is identical to the batch
// report set (order-normalized) — exits non-zero on any mismatch.
//
// Usage: online_detect [seed_entities] [output.json]
//   seed_entities  per-domain seed count (default 300)
//   output.json    result file (default: BENCH_serve.json in the CWD)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/partial.h"
#include "core/window_search.h"
#include "serve/detector_session.h"
#include "serve/pattern_index.h"
#include "serve/pattern_store.h"

using namespace wiclean;
using namespace wiclean::bench;

namespace {

/// Order-normalized fingerprint of one pattern's detection result, used to
/// compare the batch report with the online alert for the same pattern.
std::string ReportFingerprint(const PartialUpdateReport& report) {
  std::vector<std::string> sigs;
  sigs.reserve(report.partials.size());
  for (const PartialRealization& pr : report.partials) {
    sigs.push_back(pr.Signature());
  }
  std::sort(sigs.begin(), sigs.end());
  std::string out = "full=" + std::to_string(report.full_count);
  for (const std::string& s : sigs) {
    out += '|';
    out += s;
  }
  return out;
}

/// The canonical feed the CLI replays: every entity log concatenated in
/// entity-id order, sequence stamped pre-sort, then stably sorted by time —
/// so (time, sequence) reproduces the batch store's tie order.
std::vector<std::pair<Action, uint64_t>> BuildCanonicalFeed(
    const EntityRegistry& registry, const RevisionStore& store) {
  std::vector<std::pair<Action, uint64_t>> events;
  for (EntityId e = 0; e < static_cast<EntityId>(registry.size()); ++e) {
    for (const Action& a : store.LogOf(e)) {
      events.emplace_back(a, static_cast<uint64_t>(events.size()));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.time < b.first.time;
                   });
  return events;
}

struct OnlineRun {
  size_t threads = 0;
  double wall_seconds = 0;
  double actions_per_second = 0;
  double alert_latency_mean = 0;
  double alert_latency_max = 0;
  uint64_t alerts = 0;
  uint64_t slot_hits = 0;
  bool matches_batch = false;
};

struct DispatchResult {
  double index_seconds = 0;
  double scan_all_seconds = 0;
  uint64_t index_hits = 0;
  uint64_t scan_all_hits = 0;
};

/// Times pure dispatch: for every feed event, find the pattern actions it
/// can realize — once through the inverted index, once by scanning every
/// action of every pattern (what a detector without the index would do).
DispatchResult MeasureDispatch(
    const std::vector<std::pair<Action, uint64_t>>& feed,
    const PatternSnapshot& snapshot, const EntityRegistry& registry,
    const TypeTaxonomy& taxonomy, int lift) {
  DispatchResult result;

  PatternIndex index(&taxonomy, lift);
  for (size_t i = 0; i < snapshot.patterns.size(); ++i) {
    Status status = index.AddPattern(static_cast<uint32_t>(i),
                                     snapshot.patterns[i].pattern);
    if (!status.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }

  auto within_lift = [&](TypeId concrete, TypeId general) {
    return taxonomy.IsA(concrete, general) &&
           taxonomy.Depth(concrete) - taxonomy.Depth(general) <= lift;
  };

  Timer timer;
  std::vector<PatternSlot> slots;
  for (const auto& [action, sequence] : feed) {
    (void)sequence;
    TypeId subject_type = registry.TypeOf(action.subject);
    TypeId object_type = registry.TypeOf(action.object);
    if (subject_type == kInvalidTypeId || object_type == kInvalidTypeId) {
      continue;
    }
    index.Lookup(subject_type, action.relation, object_type, &slots);
    result.index_hits += slots.size();
  }
  result.index_seconds = timer.ElapsedSeconds();

  timer.Restart();
  for (const auto& [action, sequence] : feed) {
    (void)sequence;
    TypeId subject_type = registry.TypeOf(action.subject);
    TypeId object_type = registry.TypeOf(action.object);
    if (subject_type == kInvalidTypeId || object_type == kInvalidTypeId) {
      continue;
    }
    for (const StoredPattern& sp : snapshot.patterns) {
      for (const AbstractAction& a : sp.pattern.actions()) {
        if (a.relation != action.relation) continue;
        if (!within_lift(subject_type, sp.pattern.var_type(a.source_var))) {
          continue;
        }
        if (!within_lift(object_type, sp.pattern.var_type(a.target_var))) {
          continue;
        }
        ++result.scan_all_hits;
      }
    }
  }
  result.scan_all_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  SynthOptions synth;
  synth.seed_entities = SizeArg(argc, argv, 300);
  synth.years = 2;
  synth.rng_seed = 2021;
  synth.cinema = true;
  synth.politics = true;
  const char* out_path = argc > 2 ? argv[2] : "BENCH_serve.json";

  Result<SynthWorld> world_or = Synthesize(synth);
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  SynthWorld world = std::move(world_or).value();
  std::printf("three-domain corpus: %zu seeds/domain, %zu entities, %zu "
              "revision actions\n",
              synth.seed_entities, world.registry->size(),
              world.store.num_actions());

  // Mine each domain and pack everything into one snapshot, round-tripped
  // through the binary store so the replay consumes exactly what `wiclean
  // serve` would.
  constexpr int kLift = 1;
  PatternSnapshot snapshot;
  snapshot.provenance.corpus_id =
      "synth:3domain:seeds=" + std::to_string(synth.seed_entities) +
      ":rng=" + std::to_string(synth.rng_seed);
  snapshot.provenance.tool = "bench/online_detect";
  snapshot.provenance.frequency_threshold = 0.8;
  snapshot.provenance.max_abstraction_lift = kLift;
  snapshot.provenance.max_pattern_actions = 6;
  snapshot.provenance.mine_relative = true;

  const TypeId seed_types[] = {world.types.soccer_player,
                               world.types.film_actor, world.types.senator};
  Timer timer;
  for (TypeId seed_type : seed_types) {
    WindowSearchOptions options;
    options.initial_threshold = snapshot.provenance.frequency_threshold;
    options.miner.max_abstraction_lift = kLift;
    options.miner.max_pattern_actions =
        snapshot.provenance.max_pattern_actions;
    options.mine_relative = snapshot.provenance.mine_relative;
    WindowSearch search(world.registry.get(), &world.store, options);
    Result<WindowSearchResult> result =
        search.Run(seed_type, 0, kSecondsPerYear);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const DiscoveredPattern& dp : result->patterns) {
      // Single-action patterns cannot have partial realizations; the CLI
      // skips them in both batch and online paths, so the bench does too.
      if (dp.mined.pattern.num_actions() < 2) continue;
      snapshot.patterns.push_back({dp.mined.pattern, dp.mined.window,
                                   dp.mined.frequency, dp.mined.support,
                                   dp.threshold});
    }
  }
  double mine_seconds = timer.ElapsedSeconds();

  std::string bytes;
  if (Status s = EncodeSnapshot(snapshot, *world.taxonomy, &bytes); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<PatternSnapshot> decoded = DecodeSnapshot(bytes, *world.taxonomy);
  if (!decoded.ok()) {
    std::fprintf(stderr, "%s\n", decoded.status().ToString().c_str());
    return 1;
  }
  snapshot = std::move(decoded).value();
  std::printf("mined %zu pattern(s) in %.1fs; snapshot %zu bytes\n",
              snapshot.patterns.size(), mine_seconds, bytes.size());
  if (snapshot.patterns.empty()) {
    std::fprintf(stderr, "no patterns mined — corpus too small\n");
    return 1;
  }

  // Batch baseline: the offline detector over every snapshot pattern.
  PartialDetectorOptions detector_options;
  detector_options.max_abstraction_lift = kLift;
  PartialUpdateDetector batch(world.registry.get(), &world.store,
                              detector_options);
  std::vector<std::string> batch_fingerprints(snapshot.patterns.size());
  uint64_t batch_signals = 0;
  timer.Restart();
  for (size_t i = 0; i < snapshot.patterns.size(); ++i) {
    const StoredPattern& sp = snapshot.patterns[i];
    Result<PartialUpdateReport> report = batch.Detect(sp.pattern, sp.window);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    batch_signals += report->partials.size();
    batch_fingerprints[i] = ReportFingerprint(*report);
  }
  double batch_seconds = timer.ElapsedSeconds();
  std::printf("batch sweep: %zu pattern(s), %llu signal(s), %.3fs\n",
              snapshot.patterns.size(),
              static_cast<unsigned long long>(batch_signals), batch_seconds);

  // Online replays.
  std::vector<std::pair<Action, uint64_t>> feed =
      BuildCanonicalFeed(*world.registry, world.store);
  std::vector<OnlineRun> runs;
  bool all_match = true;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    DetectorSessionOptions options;
    options.num_threads = threads;
    options.detector.detector = detector_options;
    DetectorSession session(world.registry.get(), options);
    if (Status s = session.Start(snapshot); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Timer wall;
    for (const auto& [action, sequence] : feed) {
      if (!session.FeedWithSequence(action, sequence)) break;
    }
    Result<SessionReport> report = session.Drain();
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }

    OnlineRun run;
    run.threads = threads;
    run.wall_seconds = wall.ElapsedSeconds();
    run.actions_per_second =
        run.wall_seconds > 0 ? feed.size() / run.wall_seconds : 0;
    run.alerts = report->alerts.size();
    run.slot_hits = report->stats.slot_hits;
    double latency_sum = 0;
    for (const OnlineAlert& alert : report->alerts) {
      latency_sum += alert.finalize_seconds;
      run.alert_latency_max =
          std::max(run.alert_latency_max, alert.finalize_seconds);
    }
    run.alert_latency_mean =
        report->alerts.empty() ? 0 : latency_sum / report->alerts.size();

    run.matches_batch = report->alerts.size() == snapshot.patterns.size();
    for (const OnlineAlert& alert : report->alerts) {
      if (alert.pattern_id >= batch_fingerprints.size() ||
          ReportFingerprint(alert.report) !=
              batch_fingerprints[alert.pattern_id]) {
        run.matches_batch = false;
        std::fprintf(stderr,
                     "MISMATCH at %zu thread(s): pattern %u diverges from "
                     "batch\n",
                     threads, alert.pattern_id);
      }
    }
    all_match = all_match && run.matches_batch;
    std::printf(
        "online x%zu: %.3fs (%.0f actions/s), %llu alert(s), finalize "
        "mean %.2fms max %.2fms, batch-identical: %s\n",
        threads, run.wall_seconds, run.actions_per_second,
        static_cast<unsigned long long>(run.alerts),
        1e3 * run.alert_latency_mean, 1e3 * run.alert_latency_max,
        run.matches_batch ? "yes" : "NO");
    runs.push_back(run);
  }

  DispatchResult dispatch = MeasureDispatch(feed, snapshot, *world.registry,
                                            *world.taxonomy, kLift);
  double dispatch_speedup = dispatch.index_seconds > 0
                                ? dispatch.scan_all_seconds /
                                      dispatch.index_seconds
                                : 0;
  std::printf(
      "dispatch over %zu events: index %.3fs vs scan-all %.3fs (%.1fx), "
      "hits %llu/%llu\n",
      feed.size(), dispatch.index_seconds, dispatch.scan_all_seconds,
      dispatch_speedup, static_cast<unsigned long long>(dispatch.index_hits),
      static_cast<unsigned long long>(dispatch.scan_all_hits));
  if (dispatch.index_hits != dispatch.scan_all_hits) {
    std::fprintf(stderr,
                 "MISMATCH: index dispatch and scan-all dispatch disagree\n");
    all_match = false;
  }

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  JsonWriter w(&file, /*pretty=*/true);
  w.BeginObject();
  w.Key("bench");
  w.String("online_detect");
  w.Key("seed_entities");
  w.Int(static_cast<int64_t>(synth.seed_entities));
  w.Key("feed_events");
  w.Int(static_cast<int64_t>(feed.size()));
  w.Key("patterns");
  w.Int(static_cast<int64_t>(snapshot.patterns.size()));
  w.Key("snapshot_bytes");
  w.Int(static_cast<int64_t>(bytes.size()));
  w.Key("batch_sweep_seconds");
  w.Number(batch_seconds);
  w.Key("batch_signals");
  w.Int(static_cast<int64_t>(batch_signals));
  w.Key("online_runs");
  w.BeginArray();
  for (const OnlineRun& run : runs) {
    w.BeginObject();
    w.Key("feed_threads");
    w.Int(static_cast<int64_t>(run.threads));
    w.Key("wall_seconds");
    w.Number(run.wall_seconds);
    w.Key("actions_per_second");
    w.Number(run.actions_per_second);
    w.Key("alerts");
    w.Int(static_cast<int64_t>(run.alerts));
    w.Key("slot_hits");
    w.Int(static_cast<int64_t>(run.slot_hits));
    w.Key("alert_latency_mean_seconds");
    w.Number(run.alert_latency_mean);
    w.Key("alert_latency_max_seconds");
    w.Number(run.alert_latency_max);
    w.Key("matches_batch");
    w.Bool(run.matches_batch);
    w.EndObject();
  }
  w.EndArray();
  w.Key("dispatch");
  w.BeginObject();
  w.Key("index_seconds");
  w.Number(dispatch.index_seconds);
  w.Key("scan_all_seconds");
  w.Number(dispatch.scan_all_seconds);
  w.Key("index_speedup");
  w.Number(dispatch_speedup);
  w.Key("slot_hits");
  w.Int(static_cast<int64_t>(dispatch.index_hits));
  w.EndObject();
  w.EndObject();
  file << "\n";

  if (!all_match) {
    std::fprintf(stderr, "FAILED: online/batch divergence\n");
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
