// Figure 4(a): running time as a function of the seed-set size.
//
// Paper setup: soccer domain, default threshold 0.8, the month of August,
// seed sets of 100 / 500 / 1000 entities (related-entity counts in
// parentheses). Each column splits into revision-log preprocessing (equal
// for both variants) and pattern-mining time, for PM (join-based SQL
// computation) and PM−join (main-memory nested loop).
//
// Expected shape: preprocessing dominates and is identical across variants;
// PM's mining time stays low and grows marginally with the seed set, while
// PM−join's mining time grows much faster.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/miner.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t scale = SizeArg(argc, argv, 1000);
  const size_t seed_sizes[] = {scale / 10, scale / 2, scale};
  const TimeWindow august{210 * kSecondsPerDay, 238 * kSecondsPerDay};

  std::printf(
      "Figure 4(a): running time vs seed-set size\n"
      "soccer domain, tau=0.8, 4-week August window; times in seconds\n"
      "paper shape: identical preproc per column; PM mining << PM-join "
      "mining, gap grows with size\n\n");
  std::printf("%-16s %10s %10s %12s %12s\n", "seeds(related)", "preproc",
              "reduce", "mine(PM)", "mine(PM-join)");

  for (size_t seeds : seed_sizes) {
    SynthWorld world = MakeSoccerWorld(seeds);
    RevisionStore parsed;
    double parse_seconds =
        TimeDumpPreprocessing(world, 0, kSecondsPerYear, &parsed);

    MinerOptions pm_options;
    pm_options.frequency_threshold = 0.8;
    pm_options.max_abstraction_lift = 1;
    pm_options.max_pattern_actions = 6;
    MinerOptions pmjoin_options = pm_options;
    pmjoin_options.join_engine = JoinEngineKind::kNestedLoop;

    PatternMiner pm(world.registry.get(), &parsed, pm_options);
    PatternMiner pmjoin(world.registry.get(), &parsed, pmjoin_options);

    Result<MineWindowResult> pm_result =
        pm.MineWindow(world.types.soccer_player, august);
    Result<MineWindowResult> pmjoin_result =
        pmjoin.MineWindow(world.types.soccer_player, august);
    if (!pm_result.ok() || !pmjoin_result.ok()) {
      std::fprintf(stderr, "mining failed\n");
      return 1;
    }

    char label[64];
    std::snprintf(label, sizeof(label), "%zu (%zu)", seeds,
                  pm_result->stats.entities_ingested);
    std::printf("%-16s %10.3f %10.3f %12.4f %12.4f\n", label, parse_seconds,
                pm_result->stats.ingest_seconds, pm_result->stats.mine_seconds,
                pmjoin_result->stats.mine_seconds);
  }
  std::printf(
      "\n(preproc = dump parsing/diffing; reduce = reduced+abstract action "
      "extraction, shared by both variants)\n");
  return 0;
}
