// Ablation: the taxonomy abstraction lift. Lift 0 mines at most-specific
// types only (no hierarchy — the configuration of prior tools the paper
// contrasts with); each additional level multiplies the candidate space but
// lets one pattern cover sibling subtypes (here: goalkeepers + outfield
// players under soccer_player).
//
// The soccer seed mixture (80% soccer_player, 20% soccer_goalkeeper) makes
// the effect visible: at lift 0, patterns split per subtype and the
// goalkeeper share keeps every split below threshold levels reached only
// later — or never.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/window_search.h"
#include "eval/quality.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t seeds = SizeArg(argc, argv, 300);
  SynthWorld world = MakeSoccerWorld(seeds, /*rng_seed=*/61);
  std::vector<ExpertPattern> experts;
  for (const ExpertPattern& e : world.ground_truth.expert_patterns) {
    if (e.domain == "soccer") experts.push_back(e);
  }

  std::printf(
      "Ablation: taxonomy abstraction lift (soccer, %zu seeds, 20%% "
      "goalkeeper mixture)\n\n",
      seeds);
  std::printf("%-6s %10s %12s %10s %8s %8s\n", "lift", "time(s)",
              "candidates", "precision", "recall", "F1");

  for (int lift = 0; lift <= 2; ++lift) {
    WindowSearchOptions options;
    options.initial_threshold = 0.8;
    options.miner.max_abstraction_lift = lift;
    options.miner.max_pattern_actions = 6;
    options.mine_relative = false;

    WindowSearch search(world.registry.get(), &world.store, options);
    Timer timer;
    Result<WindowSearchResult> result =
        search.Run(world.types.soccer_player, 0, kSecondsPerYear);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "lift %d: %s\n", lift,
                   result.status().ToString().c_str());
      continue;
    }
    PatternQualityReport quality =
        EvaluatePatternQuality(result->patterns, experts, *world.taxonomy);
    std::printf("%-6d %10.3f %12zu %10.2f %8.2f %8.2f\n", lift, seconds,
                result->total_stats.candidates_considered, quality.precision,
                quality.recall, quality.f1);
  }
  return 0;
}
