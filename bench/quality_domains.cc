// The §6.3 quality analysis: pattern precision/recall against the expert
// lists and error-detection statistics, for all three domains.
//
// Paper results (1000-entity seed sets):
//   patterns:  precision 100%; recall 9/11 (soccer), 7/8 (cinema),
//              4/5 (politicians) — average 83.3%; every miss window-less
//   errors:    soccer   3743 signaled, 71.6% corrected in 2019, 82.1% of the
//                       remaining verified as real unnoticed errors
//              cinema   2554 signaled, 67.8% corrected, 81.2% verified
//              politics 1125 signaled, 67.8% corrected, 78.1% verified
//
// Absolute signal counts scale with the synthetic error-injection rates; the
// percentages and the precision/recall shape are the reproduction targets.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/window_search.h"
#include "eval/quality.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  SynthOptions synth;
  synth.seed_entities = SizeArg(argc, argv, 1000);
  synth.years = 2;
  synth.rng_seed = 2021;
  synth.cinema = true;
  synth.politics = true;
  Result<SynthWorld> world_or = Synthesize(synth);
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  SynthWorld world = std::move(world_or).value();

  std::printf(
      "Quality analysis (sec. 6.3): %zu seeds per domain, %zu entities, %zu "
      "revision actions\n\n",
      synth.seed_entities, world.registry->size(),
      world.store.num_actions());

  struct Domain {
    const char* name;
    TypeId seed_type;
    const char* paper;
  };
  const Domain domains[] = {
      {"soccer", world.types.soccer_player,
       "paper: recall 9/11, 3743 signals, 71.6% corrected, 82.1% verified"},
      {"cinematography", world.types.film_actor,
       "paper: recall 7/8, 2554 signals, 67.8% corrected, 81.2% verified"},
      {"us_politicians", world.types.senator,
       "paper: recall 4/5, 1125 signals, 67.8% corrected, 78.1% verified"},
  };

  double recall_sum = 0;
  for (const Domain& domain : domains) {
    WindowSearchOptions options;
    options.initial_threshold = 0.8;
    options.miner.max_abstraction_lift = 1;
    options.miner.max_pattern_actions = 6;
    options.mine_relative = true;

    WindowSearch search(world.registry.get(), &world.store, options);
    Timer timer;
    Result<WindowSearchResult> result =
        search.Run(domain.seed_type, 0, kSecondsPerYear);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }

    std::vector<ExpertPattern> experts;
    for (const ExpertPattern& e : world.ground_truth.expert_patterns) {
      if (e.domain == domain.name) experts.push_back(e);
    }
    PatternQualityReport quality =
        EvaluatePatternQuality(result->patterns, experts, *world.taxonomy);

    ErrorEvaluationOptions eval_options;
    eval_options.detector.max_abstraction_lift = 1;
    eval_options.miner = options.miner;
    Result<ErrorDetectionReport> errors =
        EvaluateErrorDetection(world, result->patterns, eval_options);
    if (!errors.ok()) {
      std::fprintf(stderr, "%s\n", errors.status().ToString().c_str());
      return 1;
    }

    recall_sum += quality.recall;
    std::printf("=== %s (search %.1fs) ===\n", domain.name,
                timer.ElapsedSeconds());
    std::printf("  %s\n", domain.paper);
    std::printf(
        "  measured: precision %.2f, recall %zu/%zu; %zu signals, %.1f%% "
        "corrected next year, %.1f%% of remaining verified\n",
        quality.precision, quality.detected_experts, quality.expert_total,
        errors->total_signals, errors->corrected_pct, errors->verified_pct);
    for (const std::string& missed : quality.missed_experts) {
      std::printf("  missed expert pattern: %s\n", missed.c_str());
    }
    std::printf("\n");
  }
  std::printf("average recall: %.1f%% (paper: 83.3%%)\n",
              100.0 * recall_sum / 3.0);
  return 0;
}
