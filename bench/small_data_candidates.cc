// The §6.2 "experiments with small data": candidate patterns considered by
// the incremental graph construction (PM / PM−join) versus the conventional
// full-graph materialization (PM−inc / PM−inc,−join).
//
// Paper setup: a small mixed subset of Wikipedia (a 2-reachable neighborhood
// of 10 soccer seeds, ~10K entities) fed whole to the full-graph variants,
// vs incremental construction from 200 seeds reaching a subgraph of the same
// order. Result: 524 candidates (full graph) vs 125 (incremental) — the
// incremental construction prunes irrelevant candidates. Candidate counts do
// not depend on the join engine, so two numbers summarize all four variants.
//
// Our setup: one world containing all three domains plus unrelated
// background entities; mining runs on the soccer transfer window. PM−inc
// ingests every revision log up front (including cinema, politics and
// background noise, whose abstractions inflate the candidate space), while
// PM only follows types reachable through frequent patterns.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/miner.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  SynthOptions synth;
  synth.seed_entities = SizeArg(argc, argv, 200);
  synth.years = 1;
  synth.rng_seed = 13;
  synth.cinema = true;
  synth.politics = true;
  synth.background_entities = synth.seed_entities * 10;
  synth.background_edit_rate = 20.0;
  synth.background_relation_count = 300;
  Result<SynthWorld> world_or = Synthesize(synth);
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  SynthWorld world = std::move(world_or).value();

  const TimeWindow window{224 * kSecondsPerDay, 238 * kSecondsPerDay};
  std::printf(
      "Small-data experiment (sec. 6.2): candidates considered,\n"
      "incremental graph construction vs full materialization\n"
      "world: %zu entities (3 domains + background), %zu actions; "
      "2-week transfer window, tau=0.5\n"
      "paper: PM-inc considered 524 candidates vs 125 for PM (~4.2x)\n\n",
      world.registry->size(), world.store.num_actions());

  MinerOptions base;
  base.frequency_threshold = 0.5;
  base.max_abstraction_lift = 1;
  base.max_pattern_actions = 4;

  std::printf("%-12s %12s %14s %12s %10s\n", "variant", "candidates",
              "logs ingested", "actions", "patterns");
  size_t candidates[2] = {0, 0};
  int i = 0;
  for (GraphStrategy strategy :
       {GraphStrategy::kIncremental, GraphStrategy::kMaterializeFull}) {
    MinerOptions options = base;
    options.graph_strategy = strategy;
    PatternMiner miner(world.registry.get(), &world.store, options);
    Result<MineWindowResult> result =
        miner.MineWindow(world.types.soccer_player, window);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    candidates[i++] = result->stats.candidates_considered;
    std::printf("%-12s %12zu %14zu %12zu %10zu\n",
                strategy == GraphStrategy::kIncremental ? "PM" : "PM-inc",
                result->stats.candidates_considered,
                result->stats.entities_ingested,
                result->stats.actions_ingested,
                result->most_specific.size());
  }
  if (candidates[0] > 0) {
    std::printf("\nPM-inc / PM candidate ratio: %.2fx (paper: ~4.2x)\n",
                static_cast<double>(candidates[1]) /
                    static_cast<double>(candidates[0]));
  }
  return 0;
}
