// Ablation: Algorithm 3's outer-join engine. The paper motivates the
// "efficient outer-join based algorithm" for partial-update detection; this
// harness compares the hash-based full outer join against exhaustive pairing
// on growing seed sets (detection output is identical; only time differs).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/partial.h"
#include "core/window_search.h"

using namespace wiclean;
using namespace wiclean::bench;

int main(int argc, char** argv) {
  size_t scale = SizeArg(argc, argv, 2000);
  const size_t seed_sizes[] = {scale / 8, scale / 4, scale / 2, scale};

  std::printf(
      "Ablation: Algorithm 3 outer-join engine (hash vs exhaustive pairing)\n"
      "full transfer pattern, 2-week window; times in seconds\n\n");
  std::printf("%-8s %10s %14s %12s %10s\n", "seeds", "hash-join",
              "nested-loop", "slowdown", "signals");

  for (size_t seeds : seed_sizes) {
    SynthWorld world = MakeSoccerWorld(seeds, /*rng_seed=*/71);

    // Mine the transfer window once to get the 4-action club pattern.
    MinerOptions miner_options;
    miner_options.frequency_threshold = 0.5;
    miner_options.max_abstraction_lift = 1;
    miner_options.max_pattern_actions = 4;
    PatternMiner miner(world.registry.get(), &world.store, miner_options);
    TimeWindow window = world.WindowOf(16);
    Result<MineWindowResult> mined =
        miner.MineWindow(world.types.soccer_player, window);
    if (!mined.ok() || mined->most_specific.empty()) {
      std::fprintf(stderr, "mining failed\n");
      return 1;
    }
    const Pattern* transfer = nullptr;
    for (const MinedPattern& mp : mined->most_specific) {
      if (mp.pattern.num_actions() == 4) transfer = &mp.pattern;
    }
    if (transfer == nullptr) transfer = &mined->most_specific.front().pattern;

    PartialDetectorOptions hash_options{3, true, 1};
    PartialDetectorOptions loop_options{3, false, 1};
    PartialUpdateDetector hash_detector(world.registry.get(), &world.store,
                                        hash_options);
    PartialUpdateDetector loop_detector(world.registry.get(), &world.store,
                                        loop_options);

    Timer t1;
    Result<PartialUpdateReport> hash_report =
        hash_detector.Detect(*transfer, window);
    double hash_seconds = t1.ElapsedSeconds();
    Timer t2;
    Result<PartialUpdateReport> loop_report =
        loop_detector.Detect(*transfer, window);
    double loop_seconds = t2.ElapsedSeconds();
    if (!hash_report.ok() || !loop_report.ok()) {
      std::fprintf(stderr, "detection failed\n");
      return 1;
    }
    if (hash_report->partials.size() != loop_report->partials.size()) {
      std::fprintf(stderr, "ENGINE MISMATCH: %zu vs %zu signals\n",
                   hash_report->partials.size(),
                   loop_report->partials.size());
      return 1;
    }
    std::printf("%-8zu %10.4f %14.4f %11.1fx %10zu\n", seeds, hash_seconds,
                loop_seconds,
                hash_seconds > 0 ? loop_seconds / hash_seconds : 0.0,
                hash_report->partials.size());
  }
  return 0;
}
