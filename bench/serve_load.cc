// Multi-tenant serving load benchmark: drive a DetectorService with bursty
// per-tenant arrivals while snapshots hot-swap under the traffic.
//
// Measures, into BENCH_serve_load.json:
//   - aggregate throughput (accepted actions/sec across all tenants),
//   - alert finalize latency p50/p99 over every tenant's alerts,
//   - admission/overload behavior: events shed by the per-tenant deadline
//     gate and the retries the driver paid to redeliver them,
//   - epoch lifecycle under churn: snapshots published / retired / freed
//     while sessions were live,
// and self-verifies: every tenant's alert set must be order-normalized
// identical to a batch replay of the tenant's *pinned* epoch, and every
// retired epoch must be refcount-drained and freed. Exits non-zero on any
// digest mismatch or leaked epoch.
//
// A shed event is delivered nowhere (the admission gate is all-or-nothing),
// so the driver retries it until accepted: load shedding is exercised and
// counted without breaking exactly-once delivery — which is what keeps the
// digests comparable to batch.
//
// Usage: serve_load [seed_entities] [output.json]
//   seed_entities  soccer-domain seed count (default 120)
//   output.json    result file (default: BENCH_serve_load.json in the CWD)

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/partial.h"
#include "core/window_search.h"
#include "serve/detector_service.h"
#include "serve/pattern_store.h"

using namespace wiclean;
using namespace wiclean::bench;

namespace {

/// Order-normalized fingerprint of one pattern's detection result.
std::string ReportFingerprint(const PartialUpdateReport& report) {
  std::vector<std::string> sigs;
  sigs.reserve(report.partials.size());
  for (const PartialRealization& pr : report.partials) {
    sigs.push_back(pr.Signature());
  }
  std::sort(sigs.begin(), sigs.end());
  std::string out = "full=" + std::to_string(report.full_count);
  for (const std::string& s : sigs) {
    out += '|';
    out += s;
  }
  return out;
}

std::vector<std::pair<Action, uint64_t>> BuildCanonicalFeed(
    const EntityRegistry& registry, const RevisionStore& store) {
  std::vector<std::pair<Action, uint64_t>> events;
  for (EntityId e = 0; e < static_cast<EntityId>(registry.size()); ++e) {
    for (const Action& a : store.LogOf(e)) {
      events.emplace_back(a, static_cast<uint64_t>(events.size()));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.time < b.first.time;
                   });
  return events;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  SynthOptions synth;
  synth.seed_entities = SizeArg(argc, argv, 120);
  synth.years = 2;
  synth.rng_seed = 2024;
  const char* out_path = argc > 2 ? argv[2] : "BENCH_serve_load.json";

  constexpr size_t kTenants = 4;
  constexpr size_t kShardsPerTenant = 2;
  constexpr size_t kReloads = 3;

  Result<SynthWorld> world_or = Synthesize(synth);
  if (!world_or.ok()) {
    std::fprintf(stderr, "%s\n", world_or.status().ToString().c_str());
    return 1;
  }
  SynthWorld world = std::move(world_or).value();
  std::printf("soccer corpus: %zu seeds, %zu entities, %zu revision "
              "actions\n",
              synth.seed_entities, world.registry->size(),
              world.store.num_actions());

  // Mine epoch A; epoch B is the even-indexed subset — a genuinely different
  // pattern set so a session pinned to the wrong epoch cannot match.
  constexpr int kLift = 1;
  PatternSnapshot snapshot_a;
  snapshot_a.provenance.corpus_id =
      "synth:soccer:seeds=" + std::to_string(synth.seed_entities);
  snapshot_a.provenance.tool = "bench/serve_load";
  snapshot_a.provenance.frequency_threshold = 0.8;
  snapshot_a.provenance.max_abstraction_lift = kLift;
  snapshot_a.provenance.max_pattern_actions = 6;
  snapshot_a.provenance.mine_relative = true;
  {
    WindowSearchOptions options;
    options.initial_threshold = snapshot_a.provenance.frequency_threshold;
    options.miner.max_abstraction_lift = kLift;
    options.miner.max_pattern_actions = 6;
    options.mine_relative = true;
    WindowSearch search(world.registry.get(), &world.store, options);
    Result<WindowSearchResult> result =
        search.Run(world.types.soccer_player, 0, kSecondsPerYear);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const DiscoveredPattern& dp : result->patterns) {
      if (dp.mined.pattern.num_actions() < 2) continue;
      snapshot_a.patterns.push_back({dp.mined.pattern, dp.mined.window,
                                     dp.mined.frequency, dp.mined.support,
                                     dp.threshold});
    }
  }
  if (snapshot_a.patterns.empty()) {
    std::fprintf(stderr, "no patterns mined — corpus too small\n");
    return 1;
  }
  PatternSnapshot snapshot_b;
  snapshot_b.provenance = snapshot_a.provenance;
  snapshot_b.provenance.corpus_id += ":even-subset";
  for (size_t i = 0; i < snapshot_a.patterns.size(); i += 2) {
    snapshot_b.patterns.push_back(snapshot_a.patterns[i]);
  }

  // Batch baselines, one fingerprint vector per epoch flavor.
  PartialDetectorOptions detector_options;
  detector_options.max_abstraction_lift = kLift;
  PartialUpdateDetector batch(world.registry.get(), &world.store,
                              detector_options);
  std::vector<std::string> batch_a;
  Timer timer;
  for (const StoredPattern& sp : snapshot_a.patterns) {
    Result<PartialUpdateReport> report = batch.Detect(sp.pattern, sp.window);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    batch_a.push_back(ReportFingerprint(*report));
  }
  double batch_seconds = timer.ElapsedSeconds();
  std::vector<std::string> batch_b;
  for (size_t i = 0; i < batch_a.size(); i += 2) {
    batch_b.push_back(batch_a[i]);
  }
  std::printf("mined %zu pattern(s) (epoch B keeps %zu); batch sweep "
              "%.3fs\n",
              snapshot_a.patterns.size(), snapshot_b.patterns.size(),
              batch_seconds);

  std::vector<std::pair<Action, uint64_t>> feed =
      BuildCanonicalFeed(*world.registry, world.store);

  // The service under test: bounded tenants, per-tenant quotas, a real
  // deadline so the overload path is live.
  DetectorServiceOptions service_options;
  service_options.max_tenants = kTenants;
  service_options.shards_per_tenant = kShardsPerTenant;
  service_options.tenant_queue_capacity = 64;
  service_options.feed_deadline_ms = 50;
  service_options.detector.detector = detector_options;
  DetectorService service(world.registry.get(), service_options);

  // epoch id -> which batch baseline it must reproduce.
  std::vector<const std::vector<std::string>*> expected_by_epoch(1, nullptr);
  auto publish = [&](bool use_b) {
    EpochId epoch = service.PublishSnapshot(use_b ? snapshot_b : snapshot_a);
    expected_by_epoch.resize(epoch + 1, nullptr);
    expected_by_epoch[epoch] = use_b ? &batch_b : &batch_a;
    return epoch;
  };
  publish(/*use_b=*/false);

  struct TenantStream {
    TenantId id = 0;
    size_t next = 0;  // next feed index to deliver
  };
  std::vector<TenantStream> streams(kTenants);
  size_t opened = 0;
  auto open_next = [&]() -> bool {
    Result<TenantId> session = service.OpenSession();
    if (!session.ok()) {
      std::fprintf(stderr, "open %zu failed: %s\n", opened,
                   session.status().ToString().c_str());
      return false;
    }
    streams[opened].id = *session;
    ++opened;
    return true;
  };
  if (!open_next()) return 1;

  // Bursty interleave: splitmix64 picks an open tenant with events remaining
  // and delivers a burst of 1..32 of its events, so queue pressure swings
  // between tenants instead of round-robin trickling. Reload j swaps the
  // snapshot when total delivery crosses total*(j+1)/(kReloads+1); tenant i
  // opens when delivery crosses total*i/kTenants — the thresholds interleave
  // so later tenants pin hot-swapped epochs and the verification spans a
  // *mixed* epoch population.
  uint64_t rng = 0x5eedf00d2024ull;
  const uint64_t total_events = feed.size() * kTenants;
  uint64_t delivered = 0;
  uint64_t shed_retries = 0;
  size_t reloads_done = 0;
  Timer wall;
  while (delivered < total_events) {
    if (reloads_done < kReloads &&
        delivered >= total_events * (reloads_done + 1) / (kReloads + 1)) {
      publish(/*use_b=*/reloads_done % 2 == 0);
      ++reloads_done;
    }
    if (opened < kTenants && delivered >= total_events * opened / kTenants) {
      if (!open_next()) return 1;
    }
    bool any_open_remaining = false;
    for (size_t t = 0; t < opened; ++t) {
      any_open_remaining = any_open_remaining ||
                           streams[t].next < feed.size();
    }
    if (!any_open_remaining) {
      // Every open stream is drained but unopened tenants still owe events:
      // admit the next one early rather than spin.
      if (opened >= kTenants || !open_next()) return 1;
      continue;
    }
    TenantStream* pick = nullptr;
    // Rejection-sample an open tenant that still has events; bounded
    // because at least one does (checked above).
    while (pick == nullptr) {
      TenantStream& candidate = streams[SplitMix64(&rng) % opened];
      if (candidate.next < feed.size()) pick = &candidate;
    }
    size_t burst = 1 + SplitMix64(&rng) % 32;
    for (; burst > 0 && pick->next < feed.size(); --burst) {
      FeedResult r = service.Feed(pick->id, feed[pick->next].first);
      if (r == FeedResult::kOverloaded) {
        ++shed_retries;  // redeliver the same event (exactly-once overall)
        continue;
      }
      if (r != FeedResult::kOk) {
        std::fprintf(stderr, "tenant %llu feed failed at event %zu\n",
                     static_cast<unsigned long long>(pick->id), pick->next);
        return 1;
      }
      ++pick->next;
      ++delivered;
    }
  }

  // Drain every tenant and verify each against its pinned epoch's baseline.
  bool all_match = true;
  std::vector<double> latencies;
  uint64_t total_alerts = 0;
  for (TenantStream& stream : streams) {
    Result<TenantReport> report = service.CloseSession(stream.id);
    if (!report.ok()) {
      std::fprintf(stderr, "close failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const std::vector<std::string>* expected =
        report->epoch < expected_by_epoch.size()
            ? expected_by_epoch[report->epoch]
            : nullptr;
    if (expected == nullptr) {
      std::fprintf(stderr, "tenant %llu pinned unknown epoch %llu\n",
                   static_cast<unsigned long long>(report->tenant),
                   static_cast<unsigned long long>(report->epoch));
      return 1;
    }
    bool match = report->session.alerts.size() == expected->size();
    for (size_t i = 0; match && i < expected->size(); ++i) {
      match = report->session.alerts[i].pattern_id == i &&
              ReportFingerprint(report->session.alerts[i].report) ==
                  (*expected)[i];
    }
    if (!match) {
      std::fprintf(stderr,
                   "MISMATCH: tenant %llu (epoch %llu) diverges from its "
                   "pinned epoch's batch replay\n",
                   static_cast<unsigned long long>(report->tenant),
                   static_cast<unsigned long long>(report->epoch));
      all_match = false;
    }
    total_alerts += report->session.alerts.size();
    for (const OnlineAlert& alert : report->session.alerts) {
      latencies.push_back(alert.finalize_seconds);
    }
  }
  double wall_seconds = wall.ElapsedSeconds();

  // Epoch quiescence: only the current epoch may survive, nothing pinned,
  // every retired snapshot actually destroyed.
  SnapshotRegistryStats epochs = service.registry_stats();
  if (epochs.outstanding_pins != 0 || epochs.live_epochs != 1 ||
      epochs.snapshots_freed != epochs.epochs_retired ||
      epochs.epochs_retired + 1 != epochs.epochs_published) {
    std::fprintf(stderr, "LEAK: epochs published=%llu retired=%llu "
                         "freed=%llu live=%llu pins=%llu\n",
                 static_cast<unsigned long long>(epochs.epochs_published),
                 static_cast<unsigned long long>(epochs.epochs_retired),
                 static_cast<unsigned long long>(epochs.snapshots_freed),
                 static_cast<unsigned long long>(epochs.live_epochs),
                 static_cast<unsigned long long>(epochs.outstanding_pins));
    all_match = false;
  }

  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double actions_per_second =
      wall_seconds > 0 ? static_cast<double>(total_events) / wall_seconds : 0;
  DetectorServiceStats stats = service.stats();
  std::printf(
      "served %llu event(s) to %zu tenant(s) in %.3fs (%.0f actions/s), "
      "%zu reload(s), %llu shed, %llu alert(s), finalize p50 %.2fms p99 "
      "%.2fms, epochs %llu published / %llu freed, digests: %s\n",
      static_cast<unsigned long long>(total_events), kTenants, wall_seconds,
      actions_per_second, reloads_done,
      static_cast<unsigned long long>(shed_retries),
      static_cast<unsigned long long>(total_alerts), 1e3 * p50, 1e3 * p99,
      static_cast<unsigned long long>(epochs.epochs_published),
      static_cast<unsigned long long>(epochs.snapshots_freed),
      all_match ? "batch-identical" : "MISMATCH");

  std::ofstream file(out_path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  JsonWriter w(&file, /*pretty=*/true);
  w.BeginObject();
  w.Key("bench");
  w.String("serve_load");
  w.Key("seed_entities");
  w.Int(static_cast<int64_t>(synth.seed_entities));
  w.Key("tenants");
  w.Int(static_cast<int64_t>(kTenants));
  w.Key("shards_per_tenant");
  w.Int(static_cast<int64_t>(kShardsPerTenant));
  w.Key("tenant_queue_capacity");
  w.Int(static_cast<int64_t>(service_options.tenant_queue_capacity));
  w.Key("feed_deadline_ms");
  w.Int(service_options.feed_deadline_ms);
  w.Key("feed_events_per_tenant");
  w.Int(static_cast<int64_t>(feed.size()));
  w.Key("total_events");
  w.Int(static_cast<int64_t>(total_events));
  w.Key("patterns_epoch_a");
  w.Int(static_cast<int64_t>(snapshot_a.patterns.size()));
  w.Key("patterns_epoch_b");
  w.Int(static_cast<int64_t>(snapshot_b.patterns.size()));
  w.Key("reloads");
  w.Int(static_cast<int64_t>(reloads_done));
  w.Key("batch_sweep_seconds");
  w.Number(batch_seconds);
  w.Key("wall_seconds");
  w.Number(wall_seconds);
  w.Key("actions_per_second");
  w.Number(actions_per_second);
  w.Key("alerts");
  w.Int(static_cast<int64_t>(total_alerts));
  w.Key("alert_latency_p50_seconds");
  w.Number(p50);
  w.Key("alert_latency_p99_seconds");
  w.Number(p99);
  w.Key("events_accepted");
  w.Int(static_cast<int64_t>(stats.events_accepted));
  w.Key("events_shed");
  w.Int(static_cast<int64_t>(stats.events_shed));
  w.Key("shed_retries");
  w.Int(static_cast<int64_t>(shed_retries));
  w.Key("epochs");
  w.BeginObject();
  w.Key("published");
  w.Int(static_cast<int64_t>(epochs.epochs_published));
  w.Key("retired");
  w.Int(static_cast<int64_t>(epochs.epochs_retired));
  w.Key("freed");
  w.Int(static_cast<int64_t>(epochs.snapshots_freed));
  w.EndObject();
  w.Key("digests_match");
  w.Bool(all_match);
  w.EndObject();
  file << "\n";

  return all_match ? 0 : 1;
}
